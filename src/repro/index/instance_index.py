"""Instance counting for metagraph vectors (offline subproblem 2).

For each metagraph we need, per Eq. 1–2:

- ``pair_counts[(x, y)]`` — the number of instances containing both
  ``x`` and ``y`` at symmetric anchor positions (unordered pair, each
  instance counted once per distinct pair it realises);
- ``node_counts[x]`` — the number of instances containing ``x`` at a
  symmetric anchor position (each instance counted once per distinct
  node).

The symmetric-position pairs of an instance are derived from one witness
embedding; they are independent of which embedding is used because the
set of symmetric pattern-node pairs is invariant under automorphisms
(conjugating the witness involution by an automorphism gives another
involutive automorphism).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import DeltaError
from repro.graph.csr import CSRGraph
from repro.graph.typed_graph import NodeId, TypedGraph
from repro.matching.base import Instance, MatcherProtocol, deduplicate_instances
from repro.matching.compiled import CompiledMatcher, compiled_embedding_matrix
from repro.metagraph.metagraph import Metagraph
from repro.metagraph.symmetry import anchor_symmetric_pairs

Pair = tuple[NodeId, NodeId]


def _pair_key(x: NodeId, y: NodeId) -> Pair:
    try:
        return (x, y) if x <= y else (y, x)  # type: ignore[operator]
    except TypeError:
        return (x, y) if repr(x) <= repr(y) else (y, x)


@dataclass
class MetagraphCounts:
    """Eq. 1–2 counts for one metagraph."""

    num_instances: int = 0
    node_counts: Counter = field(default_factory=Counter)
    pair_counts: Counter = field(default_factory=Counter)


def instance_anchor_pairs(
    instance: Instance, sym_pairs: Sequence[tuple[int, int]]
) -> set[Pair]:
    """The distinct symmetric anchor pairs one instance realises.

    Derived from the instance's witness embedding; invariant under the
    witness choice because the symmetric pattern-node pairs are closed
    under automorphisms.
    """
    emb = instance.embedding  # indexed by pattern node (0..n-1)
    return {_pair_key(emb[u], emb[v]) for u, v in sym_pairs}


def count_instances_into(
    counts: MetagraphCounts,
    instances: Iterable[Instance],
    sym_pairs: Sequence[tuple[int, int]],
) -> None:
    """Fold a stream of instances into ``counts`` per Eq. 1–2."""
    if not sym_pairs:
        # No symmetric anchor pair: the metagraph cannot contribute to
        # anchor-anchor proximity (Eq. 1 is empty) — only |I(M)| counts.
        for _ in instances:
            counts.num_instances += 1
        return
    for instance in instances:
        counts.num_instances += 1
        pairs_here = instance_anchor_pairs(instance, sym_pairs)
        nodes_here = {n for pair in pairs_here for n in pair}
        for pair in pairs_here:
            counts.pair_counts[pair] += 1
        # repro-lint: ignore[unordered-iter] -- commutative `+= 1` fold; the Counter value per node is order-independent
        for node in nodes_here:
            counts.node_counts[node] += 1


def compiled_match_and_count(
    csr: CSRGraph, metagraph: Metagraph, anchor_type: str = "user"
) -> MetagraphCounts:
    """Eq. 1–2 counts straight from the compiled kernel's integer arrays.

    The whole per-embedding Python pipeline (dict embeddings →
    ``Instance`` objects → Counter updates keyed on arbitrary node ids)
    collapses into array ops: instances deduplicate as sorted integer
    rows under one ``np.unique``, symmetric anchor pairs are encoded as
    single integers and tallied by a second ``np.unique``, and original
    node ids are decoded once per *unique* pair instead of once per
    embedding.  The result is bit-identical to the streamed path: the
    pair set of an instance does not depend on which witness embedding
    ``np.unique`` happens to keep (symmetric pattern-node pairs are
    closed under automorphisms — see the module docstring).
    """
    counts = MetagraphCounts()
    embeddings = compiled_embedding_matrix(csr, metagraph)
    if embeddings.shape[0] == 0:
        return counts
    keys = np.sort(embeddings, axis=1)
    _, first = np.unique(keys, axis=0, return_index=True)
    counts.num_instances = int(first.size)
    sym_pairs = sorted(anchor_symmetric_pairs(metagraph, anchor_type))
    if not sym_pairs:
        return counts
    witnesses = embeddings[first]
    node_ids = csr.node_ids
    # dense ids are int32, so an unordered pair packs into one int64
    # (lo * stride + hi < 2^62) with no overflow risk; the *instance*
    # dimension is deliberately NOT packed into the same scalar — that
    # triple product could wrap int64 on huge graphs — and is deduped by
    # lexsort over (instance, code) instead (1-D ops stay fast).
    stride = max(csr.num_nodes, 1)
    code_cols = []
    for u, v in sym_pairs:
        a, b = witnesses[:, u], witnesses[:, v]
        code_cols.append(np.minimum(a, b) * stride + np.maximum(a, b))
    rows = np.repeat(np.arange(first.size), len(sym_pairs))
    code = np.stack(code_cols, axis=1).ravel()
    order = np.lexsort((code, rows))
    rows, code = rows[order], code[order]
    keep = np.ones(rows.size, dtype=bool)  # an instance counts each
    keep[1:] = (rows[1:] != rows[:-1]) | (code[1:] != code[:-1])  # pair once
    rows, code = rows[keep], code[keep]
    uniq_codes, pair_tallies = np.unique(code, return_counts=True)
    counts.pair_counts.update(
        {
            _pair_key(node_ids[c // stride], node_ids[c % stride]): count
            for c, count in zip(uniq_codes.tolist(), pair_tallies.tolist())
        }
    )
    # ... and each node once, however many of its pairs the instance has
    node_rows = np.concatenate([rows, rows])
    node_vals = np.concatenate([code // stride, code % stride])
    order = np.lexsort((node_vals, node_rows))
    node_rows, node_vals = node_rows[order], node_vals[order]
    keep = np.ones(node_rows.size, dtype=bool)
    keep[1:] = (node_rows[1:] != node_rows[:-1]) | (node_vals[1:] != node_vals[:-1])
    uniq_nodes, node_tallies = np.unique(node_vals[keep], return_counts=True)
    counts.node_counts.update(
        {
            node_ids[c]: count
            for c, count in zip(uniq_nodes.tolist(), node_tallies.tolist())
        }
    )
    return counts


def match_and_count(
    graph: TypedGraph,
    metagraph: Metagraph,
    anchor_type: str = "user",
    matcher: MatcherProtocol | None = None,
) -> MetagraphCounts:
    """Match a metagraph and accumulate its Eq. 1–2 counts.

    The default engine is the compiled integer-CSR kernel, counted
    through its array fast path.  Any other
    :class:`~repro.matching.base.MatcherProtocol` engine streams
    deduplicated embeddings through the reference path instead; the two
    paths are bit-identical (the cross-matcher parity suite pins it).
    """
    engine = matcher if matcher is not None else CompiledMatcher()
    if isinstance(engine, CompiledMatcher):
        return compiled_match_and_count(
            engine.csr_for(graph), metagraph, anchor_type
        )
    sym_pairs = anchor_symmetric_pairs(metagraph, anchor_type)
    counts = MetagraphCounts()
    count_instances_into(
        counts,
        deduplicate_instances(engine.find_embeddings(graph, metagraph)),
        sym_pairs,
    )
    return counts


class InstanceIndex:
    """Per-metagraph counts for a catalog, filled incrementally.

    Dual-stage training matches only a subset of the catalog; the index
    records which metagraph ids have been matched so downstream code can
    distinguish "zero count" from "never matched".
    """

    def __init__(self, catalog_size: int, anchor_type: str = "user"):
        self.catalog_size = catalog_size
        self.anchor_type = anchor_type
        self._counts: dict[int, MetagraphCounts] = {}

    def add(self, mg_id: int, counts: MetagraphCounts) -> None:
        """Record counts for a metagraph id."""
        if not 0 <= mg_id < self.catalog_size:
            raise IndexError(f"metagraph id {mg_id} outside catalog of size {self.catalog_size}")
        self._counts[mg_id] = counts

    def patch(
        self, mg_id: int, retired: MetagraphCounts, added: MetagraphCounts
    ) -> None:
        """Apply a delta to a matched metagraph's counts in place.

        Subtracts the contributions of ``retired`` instances and folds in
        ``added`` ones, keeping the stored counters exactly what a fresh
        :func:`match_and_count` on the mutated graph would produce
        (zero entries are dropped; going negative means the delta is
        wrong and raises :class:`~repro.exceptions.DeltaError`).
        """
        try:
            counts = self._counts[mg_id]
        except KeyError:
            raise DeltaError(
                f"metagraph id {mg_id} was never matched; cannot patch"
            ) from None
        counts.num_instances += added.num_instances - retired.num_instances
        if counts.num_instances < 0:
            raise DeltaError(
                f"metagraph {mg_id}: retired more instances than existed"
            )
        for counter, plus, minus in (
            (counts.node_counts, added.node_counts, retired.node_counts),
            (counts.pair_counts, added.pair_counts, retired.pair_counts),
        ):
            for key, count in plus.items():
                counter[key] += count
            for key, count in minus.items():
                remaining = counter[key] - count
                if remaining < 0:
                    raise DeltaError(
                        f"metagraph {mg_id}: count for {key!r} went negative"
                    )
                if remaining:
                    counter[key] = remaining
                else:
                    del counter[key]

    def matched_ids(self) -> frozenset[int]:
        """Ids whose instances have been computed."""
        return frozenset(self._counts)

    def is_matched(self, mg_id: int) -> bool:
        """True iff the metagraph has been matched."""
        return mg_id in self._counts

    def counts_for(self, mg_id: int) -> MetagraphCounts:
        """Counts for a matched metagraph id (KeyError if unmatched)."""
        return self._counts[mg_id]

    def num_instances(self, mg_id: int) -> int:
        """|I(M)| for a matched metagraph id."""
        return self._counts[mg_id].num_instances

    def __len__(self) -> int:
        return len(self._counts)
