"""Parallel offline index builds: shard matching across worker processes.

The offline phase's cost is Eq. 1–2 counting — one independent
``match_and_count`` per metagraph — so it parallelises along two axes:

- **across metagraphs**: each catalog id is one task;
- **across graph partitions**: a pattern with at least
  ``IndexBuildConfig.min_partition_size`` nodes is further split with
  root-partitioned shard streams, so a handful of expensive patterns
  cannot serialise the build on one worker.

With the default compiled matcher the pool initializer ships the
compact :class:`~repro.graph.csr.CSRGraph` arrays (plus the catalog)
instead of re-pickling the dict-of-set :class:`TypedGraph` — workers
bind a :class:`~repro.matching.compiled.CompiledMatcher` straight to
the arrays.  Any other configured engine falls back to shipping the
graph itself.  Either way workers return plain counters or per-instance
records and the parent folds results in ascending metagraph-id order.
Sharded results are merged with instance-level deduplication before
counting, so the store is *bit-identical* to the sequential
:func:`~repro.index.vectors.build_vectors` output — the determinism
suite compares snapshot bytes across worker counts to prove it.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.graph.csr import CSRGraph, csr_view
from repro.graph.typed_graph import TypedGraph
from repro.index.instance_index import (
    InstanceIndex,
    MetagraphCounts,
    _pair_key,
    compiled_match_and_count,
    match_and_count,
)
from repro.index.transform import Transform, identity
from repro.index.vectors import MetagraphVectors, build_vectors
import numpy as np

from repro.matching import make_matcher
from repro.matching.base import Embedding, deduplicate_instances
from repro.matching.compiled import compiled_shard_matrix
from repro.matching.partition import shard_embeddings
from repro.metagraph.catalog import MetagraphCatalog
from repro.metagraph.metagraph import Metagraph
from repro.metagraph.symmetry import anchor_symmetric_pairs

# instance records: node set -> the instance's symmetric-pair keys
InstanceRecords = dict[frozenset, frozenset]


@dataclass(frozen=True)
class IndexBuildConfig:
    """Knobs for the offline index build.

    Parameters
    ----------
    workers:
        Process-pool size.  ``1`` (default) runs the sequential
        reference path in-process — no pool, no pickling.
    min_partition_size:
        Patterns with at least this many nodes are sharded across graph
        partitions as well as across metagraphs.  Small patterns are
        cheap enough that one task each is the better trade.
    partitions_per_metagraph:
        How many graph partitions a large pattern is split into
        (default: ``workers``).
    matcher:
        Matching engine name (see :data:`repro.matching.MATCHERS`).
        The default ``"compiled"`` runs the integer-CSR kernel and
        ships CSR arrays to workers.  Whole-metagraph tasks always use
        the selected engine; *sharded* tasks need root-restricted
        search, which only the compiled kernel and the plain
        backtracking skeleton support — under any other engine the
        sharded (large) patterns run root-restricted backtracking, as
        the sequential mixed-engine build always has.  Counts are
        identical either way.
    """

    workers: int = 1
    min_partition_size: int = 4
    partitions_per_metagraph: int | None = None
    matcher: str = "compiled"

    def partitions_for(self, metagraph: Metagraph) -> int:
        """Number of shards for one pattern under this configuration."""
        if self.workers <= 1 or metagraph.size < self.min_partition_size:
            return 1
        return max(1, self.partitions_per_metagraph or self.workers)


# ----------------------------------------------------------------------
# worker side: module-level state installed once per process
# ----------------------------------------------------------------------
_worker_payload: TypedGraph | CSRGraph | None = None
_worker_catalog: MetagraphCatalog | None = None
_worker_matcher: str = "compiled"


def _init_worker(
    payload: TypedGraph | CSRGraph,
    catalog: MetagraphCatalog,
    matcher: str,
) -> None:
    global _worker_payload, _worker_catalog, _worker_matcher
    _worker_payload = payload
    _worker_catalog = catalog
    _worker_matcher = matcher


def _whole_metagraph_task(mg_id: int) -> tuple[int, MetagraphCounts, float]:
    """One unsharded task: the sequential per-metagraph counting."""
    start = time.perf_counter()
    if isinstance(_worker_payload, CSRGraph):
        counts = compiled_match_and_count(
            _worker_payload,
            _worker_catalog[mg_id],
            anchor_type=_worker_catalog.anchor_type,
        )
    else:
        counts = match_and_count(
            _worker_payload,
            _worker_catalog[mg_id],
            anchor_type=_worker_catalog.anchor_type,
            matcher=make_matcher(_worker_matcher),
        )
    return mg_id, counts, time.perf_counter() - start


def _shard_task(
    mg_id: int, shard: int, num_shards: int
) -> tuple[int, InstanceRecords, float]:
    """One graph-partition shard of a large pattern's instance stream."""
    start = time.perf_counter()
    metagraph = _worker_catalog[mg_id]
    anchor_type = _worker_catalog.anchor_type
    if isinstance(_worker_payload, CSRGraph):
        records = compiled_shard_records(
            _worker_payload, metagraph, anchor_type, shard, num_shards
        )
    else:
        records = shard_instance_records(
            _worker_payload, metagraph, anchor_type, shard, num_shards
        )
    return mg_id, records, time.perf_counter() - start


def records_from_embeddings(
    embeddings: Iterable[Embedding],
    metagraph: Metagraph,
    anchor_type: str,
) -> InstanceRecords:
    """Deduplicated instance records ``{node set: symmetric pairs}``.

    The pair set of an instance is witness-independent (symmetric
    pattern-node pairs are invariant under automorphisms), so records of
    the same instance from different shards are equal and merging is a
    plain dict union.
    """
    sym_pairs = anchor_symmetric_pairs(metagraph, anchor_type)
    ordered = sorted(metagraph.nodes())
    position = {u: i for i, u in enumerate(ordered)}
    records: InstanceRecords = {}
    for instance in deduplicate_instances(embeddings):
        emb = instance.embedding
        records[instance.nodes] = frozenset(
            _pair_key(emb[position[u]], emb[position[v]]) for u, v in sym_pairs
        )
    return records


def shard_instance_records(
    graph: TypedGraph,
    metagraph: Metagraph,
    anchor_type: str,
    shard: int,
    num_shards: int,
) -> InstanceRecords:
    """Instances found in one pure-Python shard, as instance records."""
    return records_from_embeddings(
        shard_embeddings(graph, metagraph, shard, num_shards),
        metagraph,
        anchor_type,
    )


def compiled_shard_records(
    csr: CSRGraph,
    metagraph: Metagraph,
    anchor_type: str,
    shard: int,
    num_shards: int,
) -> InstanceRecords:
    """One compiled shard's instance records, deduplicated at array level.

    Equal to :func:`shard_instance_records` record for record (same
    node sets, same witness-invariant pair keys), but instances collapse
    under one ``np.unique`` over integer rows — Python objects are built
    once per *unique* instance, never per embedding, matching the
    unsharded path's :func:`compiled_match_and_count` economics.
    """
    embeddings = compiled_shard_matrix(csr, metagraph, shard, num_shards)
    if embeddings.shape[0] == 0:
        return {}
    keys = np.sort(embeddings, axis=1)
    uniq, first = np.unique(keys, axis=0, return_index=True)
    witnesses = embeddings[first]
    sym_pairs = sorted(anchor_symmetric_pairs(metagraph, anchor_type))
    node_ids = csr.node_ids
    records: InstanceRecords = {}
    for key_row, witness in zip(uniq.tolist(), witnesses.tolist()):
        records[frozenset(node_ids[i] for i in key_row)] = frozenset(
            _pair_key(node_ids[witness[u]], node_ids[witness[v]])
            for u, v in sym_pairs
        )
    return records


def counts_from_records(records: InstanceRecords) -> MetagraphCounts:
    """Fold merged instance records into Eq. 1–2 counts.

    Mirrors :func:`~repro.index.instance_index.match_and_count` exactly:
    one count per instance per distinct pair, one per distinct node
    appearing in those pairs.
    """
    counts = MetagraphCounts(num_instances=len(records))
    for pairs in records.values():
        for pair in pairs:
            counts.pair_counts[pair] += 1
        # repro-lint: ignore[unordered-iter] -- commutative `+= 1` fold mirroring match_and_count; per-node totals are order-independent
        for node in {node for pair in pairs for node in pair}:
            counts.node_counts[node] += 1
    return counts


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
def build_index(
    graph: TypedGraph,
    catalog: MetagraphCatalog,
    config: IndexBuildConfig | None = None,
    transform: Transform = identity,
    on_metagraph: Callable[[int, float], None] | None = None,
) -> tuple[MetagraphVectors, InstanceIndex]:
    """Match every catalog metagraph and build the vector store.

    With ``workers=1`` this *is* :func:`~repro.index.vectors.build_vectors`;
    with more workers the same counts are produced by a process pool and
    folded deterministically (ascending metagraph id), so downstream
    artefacts are identical whatever the worker count.  ``on_metagraph``
    receives ``(mg_id, seconds)`` per metagraph; under the pool the
    seconds are summed worker-side wall clock, i.e. matching cost, not
    queueing.
    """
    config = config or IndexBuildConfig()
    if config.workers <= 1:
        return build_vectors(
            graph,
            catalog,
            matcher=make_matcher(config.matcher),
            transform=transform,
            on_metagraph=on_metagraph,
        )

    store = MetagraphVectors(
        len(catalog), anchor_type=catalog.anchor_type, transform=transform
    )
    store.verify_catalog(catalog)
    index = InstanceIndex(len(catalog), anchor_type=catalog.anchor_type)

    counts_by_id: dict[int, MetagraphCounts] = {}
    seconds_by_id: dict[int, float] = {}
    records_by_id: dict[int, InstanceRecords] = {}

    # the compiled engine's workers get the compact CSR arrays; any
    # other engine still needs the TypedGraph's dict-of-set adjacency
    payload = csr_view(graph) if config.matcher.lower() == "compiled" else graph
    with ProcessPoolExecutor(
        max_workers=config.workers,
        initializer=_init_worker,
        initargs=(payload, catalog, config.matcher),
    ) as pool:
        futures = []
        for mg_id in catalog.ids():
            num_shards = config.partitions_for(catalog[mg_id])
            if num_shards == 1:
                futures.append(pool.submit(_whole_metagraph_task, mg_id))
            else:
                futures.extend(
                    pool.submit(_shard_task, mg_id, shard, num_shards)
                    for shard in range(num_shards)
                )
        for future in futures:
            mg_id, result, seconds = future.result()
            seconds_by_id[mg_id] = seconds_by_id.get(mg_id, 0.0) + seconds
            if isinstance(result, MetagraphCounts):
                counts_by_id[mg_id] = result
            else:
                # merge shards as they land: the dict union IS the
                # instance-level dedup, and it is order-independent
                records_by_id.setdefault(mg_id, {}).update(result)

    for mg_id, merged in records_by_id.items():
        counts_by_id[mg_id] = counts_from_records(merged)

    for mg_id in catalog.ids():  # deterministic fold order
        counts = counts_by_id[mg_id]
        index.add(mg_id, counts)
        store.add_counts(mg_id, counts)
        if on_metagraph is not None:
            on_metagraph(mg_id, seconds_by_id[mg_id])
    return store, index
