"""The analysis framework: source model, checker registry, runner.

A checker is an :class:`ast`-walking rule with a stable ``rule`` id.
:func:`run_lint` parses every target file once into a
:class:`SourceFile` (tree, parent links, comment-derived annotations),
runs each registered checker over the files it applies to, applies
per-line suppressions, and folds everything into a
:class:`LintReport` — including the meta-findings that keep the
suppression mechanism honest (a suppression must carry a
justification, and must actually suppress something).

Suppression grammar (same line as the finding, or alone on the line
directly above it)::

    # repro-lint: ignore[rule-a,rule-b] -- justification text

The justification is mandatory: silencing an invariant checker is an
auditable decision, not a formatting fix.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

#: rule id of the suppression meta-checks themselves (not suppressible)
SUPPRESSION_RULE = "suppression"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*ignore\[(?P<rules>[^\]]*)\]"
    r"(?:\s*--\s*(?P<reason>.*\S))?"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def to_json_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


@dataclass
class Suppression:
    """One parsed ``repro-lint: ignore[...]`` comment."""

    line: int  #: the source line the comment sits on
    rules: tuple[str, ...]
    reason: str | None
    standalone: bool  #: comment is alone on its line (covers the next line)
    used: bool = False

    def covers(self, finding: Finding) -> bool:
        target = self.line + 1 if self.standalone else self.line
        return finding.line == target and finding.rule in self.rules


class SourceFile:
    """One parsed module: text, AST with parent links, suppressions."""

    def __init__(self, path: Path, rel: str, text: str):
        self.path = path
        self.rel = rel
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=rel)
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        #: real comment tokens only (a suppression example quoted in a
        #: docstring must not register); line -> (text, standalone)
        self.comments = self._tokenize_comments()
        self.suppressions = self._parse_suppressions()
        #: dotted module path ("repro.serving.router"); best effort from
        #: the file path, used by checkers to scope themselves
        self.module = self._module_name()

    def _module_name(self) -> str:
        parts = list(Path(self.rel).with_suffix("").parts)
        for marker in ("src", "repro"):
            if marker in parts:
                parts = parts[parts.index(marker):]
                if marker == "src":
                    parts = parts[1:]
                break
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    def _tokenize_comments(self) -> dict[int, tuple[str, bool]]:
        comments: dict[int, tuple[str, bool]] = {}
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.text).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                lineno, col = token.start
                standalone = not token.line[:col].strip()
                comments[lineno] = (token.string, standalone)
        except tokenize.TokenizeError:  # pragma: no cover - ast parsed it
            pass
        return comments

    def _parse_suppressions(self) -> list[Suppression]:
        suppressions = []
        for lineno, (comment, standalone) in sorted(self.comments.items()):
            match = _SUPPRESS_RE.search(comment)
            if match is None:
                continue
            rules = tuple(
                rule.strip() for rule in match.group("rules").split(",")
                if rule.strip()
            )
            suppressions.append(
                Suppression(
                    line=lineno,
                    rules=rules,
                    reason=match.group("reason"),
                    standalone=standalone,
                )
            )
        return suppressions

    # -- AST conveniences ----------------------------------------------
    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from ``node``'s parent up to the module node."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def line_comment(self, lineno: int) -> str | None:
        """The real ``#`` comment token on a 1-based source line, if any."""
        entry = self.comments.get(lineno)
        return None if entry is None else entry[0]


class Checker:
    """Base class: one rule, one ``check`` pass over one file."""

    #: stable rule identifier used in findings and suppressions
    rule: str = ""
    #: one-line human description (surfaced by ``repro lint --rules``)
    description: str = ""

    def applies_to(self, src: SourceFile) -> bool:
        """Whether this checker runs on ``src`` (default: every file)."""
        return True

    def check(self, src: SourceFile) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, src: SourceFile, node: ast.AST, message: str, rule: str | None = None
    ) -> Finding:
        return Finding(
            path=src.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule or self.rule,
            message=message,
        )


_REGISTRY: dict[str, type[Checker]] = {}


def register(cls: type[Checker]) -> type[Checker]:
    """Class decorator adding a checker to the default suite."""
    if not cls.rule:
        raise ValueError(f"checker {cls.__name__} must declare a rule id")
    if cls.rule == SUPPRESSION_RULE:
        raise ValueError(f"rule id {SUPPRESSION_RULE!r} is reserved")
    if cls.rule in _REGISTRY:
        raise ValueError(f"duplicate checker rule id {cls.rule!r}")
    _REGISTRY[cls.rule] = cls
    return cls


def all_checkers() -> dict[str, type[Checker]]:
    """The registered checkers, keyed by rule id."""
    # the checker modules register themselves on import
    import repro.analysis  # noqa: F401

    return dict(_REGISTRY)


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules: tuple[str, ...] = ()
    errors: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors

    def to_json_dict(self) -> dict[str, object]:
        return {
            "clean": self.clean,
            "files_checked": self.files_checked,
            "rules": list(self.rules),
            "errors": list(self.errors),
            "findings": [finding.to_json_dict() for finding in self.findings],
        }


def _iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(
                candidate
                for candidate in path.rglob("*.py")
                if "__pycache__" not in candidate.parts
            )
        elif path.suffix == ".py":
            yield path


def _relative(path: Path, root: Path | None) -> str:
    if root is not None:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def run_lint(
    paths: Sequence[str | Path],
    rules: Iterable[str] | None = None,
    root: str | Path | None = None,
) -> LintReport:
    """Run the checker suite over files/directories; the library API.

    ``rules`` restricts the suite to a subset of rule ids (the
    suppression meta-checks always run).  ``root`` rebases finding
    paths (defaults to the common usage: paths given relative to the
    current directory stay as given).
    """
    registry = all_checkers()
    if rules is not None:
        unknown = sorted(set(rules) - set(registry))
        if unknown:
            raise ValueError(
                f"unknown rule(s) {unknown}; available: {sorted(registry)}"
            )
        registry = {rule: registry[rule] for rule in rules}
    checkers = [cls() for _rule, cls in sorted(registry.items())]
    root_path = None if root is None else Path(root)
    report = LintReport(rules=tuple(sorted(registry)))
    seen: set[Path] = set()
    for path in _iter_python_files([Path(p) for p in paths]):
        resolved = path.resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        rel = _relative(path, root_path)
        try:
            src = SourceFile(path, rel, path.read_text(encoding="utf-8"))
        except (OSError, SyntaxError, ValueError) as exc:
            report.errors.append(f"{rel}: unparseable: {exc}")
            continue
        report.files_checked += 1
        raw: list[Finding] = []
        for checker in checkers:
            if checker.applies_to(src):
                raw.extend(checker.check(src))
        report.findings.extend(_apply_suppressions(src, raw))
    report.findings.sort()
    return report


def _apply_suppressions(
    src: SourceFile, raw: list[Finding]
) -> list[Finding]:
    """Drop suppressed findings; add the suppression meta-findings."""
    kept = []
    for finding in raw:
        suppressed = False
        for suppression in src.suppressions:
            if suppression.covers(finding):
                suppression.used = True
                suppressed = True
        if not suppressed:
            kept.append(finding)
    for suppression in src.suppressions:
        if not suppression.rules:
            kept.append(
                Finding(
                    src.rel, suppression.line, 1, SUPPRESSION_RULE,
                    "suppression names no rules: use "
                    "`# repro-lint: ignore[rule-id] -- reason`",
                )
            )
            continue
        if not suppression.reason:
            kept.append(
                Finding(
                    src.rel, suppression.line, 1, SUPPRESSION_RULE,
                    f"suppression of {list(suppression.rules)} has no "
                    "justification: append `-- why this is safe`",
                )
            )
        if not suppression.used:
            kept.append(
                Finding(
                    src.rel, suppression.line, 1, SUPPRESSION_RULE,
                    f"unused suppression of {list(suppression.rules)}: "
                    "nothing on this line triggers those rules",
                )
            )
    return kept


def format_text(report: LintReport) -> str:
    """Human-readable report (one finding per line + a summary)."""
    lines = [str(finding) for finding in report.findings]
    lines.extend(f"error: {error}" for error in report.errors)
    status = "clean" if report.clean else f"{len(report.findings)} finding(s)"
    lines.append(
        f"[repro lint] {report.files_checked} file(s), "
        f"{len(report.rules)} rule(s): {status}"
        + (f", {len(report.errors)} error(s)" if report.errors else "")
    )
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    """Machine-readable report (stable keys, sorted findings)."""
    return json.dumps(report.to_json_dict(), indent=2, sort_keys=True)
