"""Lock-discipline checker: ``# guarded-by:`` annotated attributes.

The serving tier's race fixes (PR 6/7 both shipped some) all reduce to
one discipline: certain attributes may only be touched while holding a
specific lock.  This checker makes the discipline declarative —

Annotate the attribute where it is first assigned (normally in
``__init__``)::

    self._groups = {}            # guarded-by: _cv
    self._backend = backend      # guarded-by: _cv (writes)

and every later access anywhere in the class must sit lexically inside
``with self._cv:`` (or an equivalent — see below).  The ``(writes)``
mode checks stores only: the published-reference pattern, where a
single writer mutates under the lock and readers take a benign
point-in-time snapshot, is common in this codebase and explicitly
supported rather than drowned in suppressions.

Equivalences the checker understands:

- *condition aliasing*: ``self._cv = threading.Condition(self._lock)``
  makes holding ``_cv`` and holding ``_lock`` the same thing (a
  condition wraps and acquires its lock), in both directions;
- *caller-holds*: a helper documented to run under its caller's lock
  is annotated on its ``def`` line::

      def _drain_locked(self, ...):  # guarded-by-caller: _cv

  Its body counts as holding the lock; the call sites are checked at
  their own accesses, not here.
- ``__init__`` is exempt (construction happens-before publication),
  and so is ``__repr__`` (debug output; a torn read is acceptable and
  annotating it would only teach people to hold locks in repr).

The checker is *lexical* by receiver: ``handle.conn`` is guarded by
``with handle.lock:`` for the same textual receiver ``handle``.  A
closure that captures a guarded attribute is outside the enclosing
``with`` by design — acquisition at definition time proves nothing
about call time.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator
from dataclasses import dataclass

from repro.analysis.core import Checker, Finding, SourceFile, register

_DECL_RE = re.compile(
    r"#\s*guarded-by:\s*(?P<lock>\w+)\s*(?P<writes>\(writes\))?"
)
_CALLER_RE = re.compile(r"#\s*guarded-by-caller:\s*(?P<ref>\w+(?:\.\w+)?)")

#: methods whose bodies are exempt from the discipline
_EXEMPT_METHODS = frozenset({"__init__", "__repr__", "__del__"})


@dataclass(frozen=True)
class GuardDecl:
    """One ``# guarded-by:`` declaration inside a class."""

    attr: str
    lock: str
    writes_only: bool
    line: int


def _receiver_key(node: ast.expr) -> str | None:
    """A textual key for simple receivers: ``self``, ``handle``, ..."""
    if isinstance(node, ast.Name):
        return node.id
    return None


class _ClassModel:
    """Declarations, lock aliases and methods of one class body."""

    def __init__(self, src: SourceFile, cls: ast.ClassDef | None):
        self.src = src
        self.cls = cls
        self.decls: dict[str, GuardDecl] = {}
        self.aliases: dict[str, set[str]] = {}
        if cls is not None:
            self._collect()

    @classmethod
    def merge(cls, models: list["_ClassModel"]) -> "_ClassModel":
        """File-wide view; attrs with conflicting locks are dropped."""
        merged = cls(models[0].src if models else None, None)  # type: ignore[arg-type]
        conflicting: set[str] = set()
        for model in models:
            for attr, decl in model.decls.items():
                existing = merged.decls.get(attr)
                if existing is not None and existing.lock != decl.lock:
                    conflicting.add(attr)
                merged.decls[attr] = decl
            for lock, peers in model.aliases.items():
                merged.aliases.setdefault(lock, set()).update(peers)
        for attr in conflicting:
            merged.decls.pop(attr, None)
        return merged

    def _collect(self) -> None:
        for node in ast.walk(self.cls):
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign):
                targets, value = [node.target], node.value
            else:
                continue
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and _receiver_key(target.value) == "self"
                ):
                    continue
                # the annotation may trail any physical line of a
                # multi-line assignment
                match = None
                end = getattr(node, "end_lineno", None) or node.lineno
                for lineno in range(node.lineno, end + 1):
                    comment = self.src.line_comment(lineno) or ""
                    match = _DECL_RE.search(comment)
                    if match:
                        break
                if match:
                    self.decls[target.attr] = GuardDecl(
                        attr=target.attr,
                        lock=match.group("lock"),
                        writes_only=match.group("writes") is not None,
                        line=node.lineno,
                    )
                # condition aliasing: self.C = threading.Condition(self.L)
                if (
                    value is not None
                    and isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Attribute)
                    and value.func.attr == "Condition"
                    and value.args
                    and isinstance(value.args[0], ast.Attribute)
                    and _receiver_key(value.args[0].value) == "self"
                ):
                    a, b = target.attr, value.args[0].attr
                    self.aliases.setdefault(a, {a}).add(b)
                    self.aliases.setdefault(b, {b}).add(a)

    def equivalent_locks(self, lock: str) -> set[str]:
        return self.aliases.get(lock, {lock})


@register
class GuardedByChecker(Checker):
    """``# guarded-by:`` attributes only touched under their lock."""

    rule = "guarded-by"
    description = (
        "access to a `# guarded-by: <lock>` attribute outside a "
        "matching `with <receiver>.<lock>:` block"
    )

    def check(self, src: SourceFile) -> Iterator[Finding]:
        models = [
            _ClassModel(src, node)
            for node in ast.walk(src.tree)
            if isinstance(node, ast.ClassDef)
        ]
        # two views of the declarations: `self.X` accesses check against
        # the declaring class only, while `handle.X`-style accesses from
        # *other* code in the file check against a merged map (the owner
        # of the handle enforces the handle's discipline).  Attributes
        # declared by several classes under different locks are dropped
        # from the merged view rather than guessed at.
        merged = _ClassModel.merge(models)
        for model in models:
            if model.decls:
                yield from self._check_class(src, model, self_only=True)
        if merged.decls:
            yield from self._check_class(src, merged, self_only=False)

    # ------------------------------------------------------------------
    def _check_class(
        self, src: SourceFile, model: _ClassModel, self_only: bool
    ) -> Iterator[Finding]:
        for method in self._functions(src, model, self_only):
            held_by_caller = self._caller_holds(src, method)
            yield from self._check_function(
                src, model, method, held_by_caller, self_only
            )

    def _functions(
        self, src: SourceFile, model: _ClassModel, self_only: bool
    ) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
        """The functions this pass checks (closures ride along inside)."""
        if self_only:
            bodies = [model.cls.body] if model.cls is not None else []
        else:
            bodies = [src.tree.body]
            bodies.extend(
                node.body
                for node in ast.walk(src.tree)
                if isinstance(node, ast.ClassDef)
            )
        for body in bodies:
            for stmt in body:
                if (
                    isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and stmt.name not in _EXEMPT_METHODS
                ):
                    yield stmt

    def _caller_holds(
        self, src: SourceFile, method: ast.AST
    ) -> frozenset[tuple[str, str]]:
        comment = src.line_comment(method.lineno) or ""
        match = _CALLER_RE.search(comment)
        if not match:
            return frozenset()
        ref = match.group("ref")
        receiver, _, lock = ref.rpartition(".")
        return frozenset({(receiver or "self", lock)})

    def _check_function(
        self,
        src: SourceFile,
        model: _ClassModel,
        func: ast.AST,
        held_by_caller: frozenset[tuple[str, str]],
        self_only: bool,
    ) -> Iterator[Finding]:
        # walk with an explicit stack so nested closures get checked as
        # lock-free regions (lexical `with` containment stops at `def`)
        for node, held in self._walk_holding(func, held_by_caller):
            if not isinstance(node, ast.Attribute):
                continue
            receiver = _receiver_key(node.value)
            if receiver is None or (receiver == "self") != self_only:
                continue
            decl = model.decls.get(node.attr)
            if decl is None:
                continue
            is_store = isinstance(node.ctx, (ast.Store, ast.Del))
            if decl.writes_only and not is_store:
                continue
            allowed = model.equivalent_locks(decl.lock)
            if any(
                lock in allowed and holder == receiver
                for holder, lock in held
            ):
                continue
            verb = "write to" if is_store else "read of"
            yield self.finding(
                src,
                node,
                f"{verb} `{receiver}.{node.attr}` (guarded by "
                f"`{decl.lock}`, declared line {decl.line}) outside "
                f"`with {receiver}.{decl.lock}:`",
            )

    def _walk_holding(
        self, func: ast.AST, held_by_caller: frozenset[tuple[str, str]]
    ) -> Iterator[tuple[ast.AST, frozenset[tuple[str, str]]]]:
        """Yield (node, {(receiver, lock)} held at that node)."""
        stack: list[tuple[ast.AST, frozenset[tuple[str, str]]]] = [
            (func, held_by_caller)
        ]
        first = True
        while stack:
            node, held = stack.pop()
            if not first:
                yield node, held
            first = False
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ) and node is not func:
                # a closure: locks held at its *definition* site mean
                # nothing at call time; restart with nothing held
                held = frozenset()
            acquired = held
            if isinstance(node, ast.With):
                for item in node.items:
                    expr = item.context_expr
                    if (
                        isinstance(expr, ast.Attribute)
                        and _receiver_key(expr.value) is not None
                    ):
                        acquired = acquired | {
                            (_receiver_key(expr.value), expr.attr)
                        }
            for child in ast.iter_child_nodes(node):
                stack.append((child, acquired))
