"""Resource-lifecycle checker: constructions must reach a release path.

PR 6 and PR 7 both fixed ad-hoc leaks of exactly this shape: a
``ThreadPoolExecutor``/socket/``Popen``/temp dir constructed on one
path and forgotten on another (the facade re-``prepare()`` leaking the
previous router's pool was the canonical one).  This checker enforces
the structural property at every construction site of a tracked
resource type:

- construction inside a ``with`` item → owned by the block;
- construction directly in a ``return``/``yield`` or as a call
  argument → ownership transferred to the caller/callee;
- assignment to a local name → somewhere later in the same function
  that name must be released (``close``/``shutdown``/``cleanup``/
  ``kill``/``terminate``/``stop``/``server_close``/``unlink``),
  returned/yielded, passed to a call, or stored into an attribute,
  container or subscript (ownership transferred);
- assignment to ``self.<attr>`` → somewhere in the class the attribute
  must be released the same way, or read back out (handed to another
  owner).  A write-only resource attribute is a leak by construction;
- assignment to another object's attribute (``handle.proc = ...``) →
  ownership transfers to that object's lifecycle.

The checker is intentionally conservative-but-shallow: it proves a
release *path exists*, not that every control flow takes it — the
latter is what the serving lifecycle tests pin at runtime.  Sites
where ownership genuinely ends elsewhere carry a justified
suppression.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.core import Checker, Finding, SourceFile, register

#: callables whose return value is a resource needing a release path
RESOURCE_CONSTRUCTORS = frozenset(
    {
        "ThreadPoolExecutor",
        "ProcessPoolExecutor",
        "Popen",
        "socket",  # socket.socket(...)
        "create_connection",
        "TemporaryDirectory",
        "NamedTemporaryFile",
        "TemporaryFile",
        "mkstemp",
        "open",
        "ThreadingHTTPServer",
        "HTTPServer",
    }
)

#: method names that count as releasing a resource
RELEASE_METHODS = frozenset(
    {
        "close",
        "shutdown",
        "cleanup",
        "kill",
        "terminate",
        "stop",
        "server_close",
        "unlink",
        "release",
        "__exit__",
    }
)


def _constructor_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    else:
        return None
    return name if name in RESOURCE_CONSTRUCTORS else None


def _enclosing_function(src: SourceFile, node: ast.AST) -> ast.AST:
    for ancestor in src.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return src.tree


def _enclosing_class(src: SourceFile, node: ast.AST) -> ast.ClassDef | None:
    for ancestor in src.ancestors(node):
        if isinstance(ancestor, ast.ClassDef):
            return ancestor
    return None


def _name_released_in(func: ast.AST, name: str) -> bool:
    """Whether ``name`` reaches a release/transfer anywhere in ``func``."""
    for node in ast.walk(func):
        # name.close() / name.proc.kill() ...
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in RELEASE_METHODS
            and _rooted_at(node.func.value, name)
        ):
            return True
        # transferred: return name / yield name / f(name)
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            if node.value is not None and _mentions(node.value, name):
                return True
        if isinstance(node, ast.Call) and any(
            _mentions(arg, name) for arg in list(node.args) + [
                kw.value for kw in node.keywords
            ]
        ):
            return True
        # stored into an attribute/container/subscript: new owner
        if isinstance(node, ast.Assign) and _mentions(node.value, name):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    return True
        if isinstance(node, (ast.List, ast.Tuple, ast.Dict, ast.Set)):
            if isinstance(node, ast.Dict):
                parts = [v for v in node.values if v is not None]
            else:
                parts = list(node.elts)
            if any(
                isinstance(part, ast.Name) and part.id == name
                for part in parts
            ):
                return True
    return False


def _attr_released_in(cls: ast.AST, attr: str) -> bool:
    """Whether ``self.<attr>`` reaches a release/read-out in ``cls``."""
    for node in ast.walk(cls):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in RELEASE_METHODS
            and _rooted_at_self_attr(node.func.value, attr)
        ):
            return True
        # read back out anywhere except its own assignment: the value
        # escapes to another owner (e.g. `pool, self._pool = self._pool,
        # None` then `pool.shutdown()`)
        if (
            isinstance(node, ast.Attribute)
            and node.attr == attr
            and isinstance(node.ctx, ast.Load)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return True
    return False


def _rooted_at(node: ast.expr, name: str) -> bool:
    """Whether an attribute chain bottoms out at Name(name)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    return isinstance(node, ast.Name) and node.id == name


def _rooted_at_self_attr(node: ast.expr, attr: str) -> bool:
    """Whether a chain bottoms out at ``self.<attr>``."""
    while isinstance(node, ast.Attribute):
        if (
            node.attr == attr
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return True
        node = node.value
    return False


def _mentions(node: ast.expr, name: str) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == name
        for sub in ast.walk(node)
    )


@register
class ResourceLifecycleChecker(Checker):
    """Executor/socket/process/file constructions must be releasable."""

    rule = "resource-lifecycle"
    description = (
        "resource constructed without a reachable close/context-manager/"
        "ownership-transfer path"
    )

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            ctor = _constructor_name(node)
            if ctor is None:
                continue
            if not self._owned(src, node):
                yield self.finding(
                    src,
                    node,
                    f"`{ctor}(...)` has no reachable release path: use a "
                    "`with` block, release the binding, or transfer "
                    "ownership (return / store on an owner that closes it)",
                )

    def _owned(self, src: SourceFile, node: ast.Call) -> bool:
        parent = src.parent(node)
        # with X(...) as y:  /  with X(...):
        if isinstance(parent, ast.withitem):
            return True
        # return X(...)  /  yield X(...)  — caller owns it now
        if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom)):
            return True
        # f(X(...)) or container literal — ownership transferred
        if isinstance(
            parent, (ast.Call, ast.List, ast.Tuple, ast.Dict, ast.Set, ast.keyword)
        ):
            return True
        # open(...).read() — immediate leak unless suppressed
        if isinstance(parent, ast.Attribute):
            return False
        if isinstance(parent, ast.Assign):
            target = parent.targets[0]
            if isinstance(parent.targets[0], (ast.Tuple, ast.List)):
                # tuple unpack: give up precisely, demand a suppression
                return False
            if isinstance(target, ast.Name):
                func = _enclosing_function(src, node)
                return _name_released_in(func, target.id)
            if isinstance(target, ast.Attribute) and isinstance(
                target.value, ast.Name
            ):
                if target.value.id == "self":
                    cls = _enclosing_class(src, node)
                    if cls is not None:
                        return _attr_released_in(cls, target.attr)
                # handle.proc = Popen(...): stored on another object —
                # ownership transfers to that object's lifecycle
                return True
            return False
        if isinstance(parent, ast.AnnAssign):
            target = parent.target
            if isinstance(target, ast.Name):
                func = _enclosing_function(src, node)
                return _name_released_in(func, target.id)
            return False
        # bare expression statement: constructed and dropped
        return False
