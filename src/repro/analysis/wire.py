"""Wire-error taxonomy checker for the serving boundary.

Everything that crosses a shard-worker connection is a length-prefixed
JSON frame, and every error frame is rebuilt on the far side by
``raise_remote_error`` — which can only resolve
:class:`~repro.exceptions.ReproError` subclasses.  Any other exception
type raised on the wire boundary either kills the worker loop or
arrives at the router as an unresolvable name.  Three rules keep the
boundary sound, checked in :data:`WIRE_MODULES`
(``repro/serving/protocol.py`` and ``repro/serving/worker.py``):

- ``raise SomeClass(...)`` must name a ``ReproError`` subclass (the
  taxonomy is discovered from :mod:`repro.exceptions` at check time,
  so new subclasses are allowed automatically).  Re-raises of a caught
  binding (``raise exc``/bare ``raise``) are fine — they propagate,
  they do not mint new wire types;
- no bare ``except:`` — it swallows ``KeyboardInterrupt``/``SystemExit``
  and turns operator Ctrl-C into a hung worker (this sub-check runs on
  **every** file, not just the wire modules);
- no exception smuggling: a handler broad enough to catch
  ``BaseException`` may only exist behind an earlier
  ``except (KeyboardInterrupt, SystemExit): raise`` arm in the same
  ``try`` — otherwise interpreter-shutdown signals get serialised into
  error envelopes and shipped to the router as data.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.core import Checker, Finding, SourceFile, register

#: modules forming the serving wire boundary
WIRE_MODULES = frozenset({"repro.serving.protocol", "repro.serving.worker"})

_SHUTDOWN_EXCS = frozenset({"KeyboardInterrupt", "SystemExit", "GeneratorExit"})


def _repro_error_names() -> frozenset[str]:
    """All ReproError subclass names, discovered from the live taxonomy."""
    from repro import exceptions

    names = set()
    for value in vars(exceptions).values():
        if isinstance(value, type) and issubclass(
            value, exceptions.ReproError
        ):
            names.add(value.__name__)
    return frozenset(names)


def _exc_class_names(node: ast.expr | None) -> list[str]:
    """Class names named by an ``except`` clause type expression."""
    if node is None:
        return []
    if isinstance(node, ast.Tuple):
        names = []
        for elt in node.elts:
            names.extend(_exc_class_names(elt))
        return names
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, ast.Attribute):
        return [node.attr]
    return []


def _raised_class(node: ast.Raise) -> str | None:
    """The class name a ``raise`` statement mints, if statically visible.

    ``raise`` (bare) and ``raise exc`` (re-raise of a binding) return
    ``None`` — they do not introduce a new type.
    """
    exc = node.exc
    if exc is None:
        return None
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Attribute):
        return exc.attr
    if isinstance(exc, ast.Name) and exc.id[:1].isupper():
        return exc.id
    return None


@register
class WireErrorChecker(Checker):
    """Serving wire boundary: ReproError-only, no bare/broad handlers."""

    rule = "wire-errors"
    description = (
        "non-ReproError raise or exception smuggling on the serving "
        "wire boundary; bare `except:` anywhere"
    )

    def check(self, src: SourceFile) -> Iterator[Finding]:
        on_wire = src.module in WIRE_MODULES
        allowed = _repro_error_names() if on_wire else frozenset()
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Try):
                yield from self._check_try(src, node, on_wire)
            elif on_wire and isinstance(node, ast.Raise):
                raised = _raised_class(node)
                if raised is not None and raised not in allowed:
                    yield self.finding(
                        src,
                        node,
                        f"`raise {raised}` on the wire boundary: only "
                        "ReproError subclasses can cross the wire "
                        "(raise_remote_error cannot resolve anything else)",
                    )

    def _check_try(
        self, src: SourceFile, node: ast.Try, on_wire: bool
    ) -> Iterator[Finding]:
        shutdown_reraised = False
        for handler in node.handlers:
            names = _exc_class_names(handler.type)
            if handler.type is None:
                yield self.finding(
                    src,
                    handler,
                    "bare `except:` swallows KeyboardInterrupt/SystemExit; "
                    "catch Exception (or a ReproError subclass) instead",
                )
                continue
            if names and set(names) <= _SHUTDOWN_EXCS and any(
                isinstance(stmt, ast.Raise) and stmt.exc is None
                for stmt in handler.body
            ):
                shutdown_reraised = True
                continue
            if on_wire and "BaseException" in names and not shutdown_reraised:
                yield self.finding(
                    src,
                    handler,
                    "`except BaseException` on the wire boundary without a "
                    "preceding `except (KeyboardInterrupt, SystemExit): "
                    "raise` arm smuggles shutdown signals into error frames",
                )
