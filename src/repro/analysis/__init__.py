"""Invariant-analysis suite: ``repro lint``.

The codebase guarantees properties no generic linter understands:
rankings are bit-identical across shard counts, replicas and failover;
the serving wire boundary only carries
:class:`~repro.exceptions.ReproError` subclasses; serving state obeys
a drain-before-close lifecycle; and scoring/merge hot paths must stay
free of entropy (``random``/``time``) so replays reproduce.  This
package machine-checks those invariants with AST-based checkers:

- :mod:`~repro.analysis.determinism` — unordered ``set`` iteration
  feeding order-sensitive consumers in ``index/``/``matching/``/
  ``serving/``, and entropy sources in scoring/merge hot paths;
- :mod:`~repro.analysis.locks` — ``# guarded-by: <lock>`` attributes
  may only be touched under a matching ``with`` block;
- :mod:`~repro.analysis.lifecycle` — every executor/socket/process/
  temp-dir construction must reach a close/context-manager/ownership
  -transfer path;
- :mod:`~repro.analysis.wire` — code on the serving wire boundary may
  only raise ``ReproError`` subclasses; no bare ``except:`` anywhere;
  no exception smuggling through broad handlers;
- :mod:`~repro.analysis.api` — ``__all__`` consistency and annotated
  public signatures.

Run it as ``repro lint [PATHS]`` (text or ``--format json``), or from
tests via :func:`~repro.analysis.core.run_lint`.  Findings are
suppressed per line and per rule with a justified comment::

    x = risky()  # repro-lint: ignore[rule-id] -- why this is safe

A suppression without a justification, or one that suppresses
nothing, is itself a finding.
"""

from repro.analysis import api, determinism, lifecycle, locks, wire  # noqa: F401
from repro.analysis.core import (
    Checker,
    Finding,
    LintReport,
    SourceFile,
    all_checkers,
    format_json,
    format_text,
    register,
    run_lint,
)

__all__ = [
    "Checker",
    "Finding",
    "LintReport",
    "SourceFile",
    "all_checkers",
    "format_json",
    "format_text",
    "register",
    "run_lint",
]
