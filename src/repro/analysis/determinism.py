"""Determinism checkers: unordered iteration and hot-path entropy.

The repository's load-bearing guarantee is that rankings are
*bit-identical* across matcher engines, worker counts, shard counts,
replicas and failover.  Two classes of code break that silently:

- iterating a ``set``/``frozenset`` where the element order reaches an
  order-sensitive consumer (a loop body, ``list()``/``tuple()``,
  ``enumerate``/``zip``, ``str.join``): set iteration order depends on
  insertion history and per-process hash randomisation, so the same
  inputs produce differently-ordered results across runs and hosts.
  Order-insensitive folds (``sorted``/``min``/``max``/``sum``/``len``/
  ``any``/``all``/set|dict construction) are exempt — they erase the
  order again.  ``dict`` iteration is exempt by design: CPython dicts
  iterate in insertion order, which is deterministic whenever the
  insertions are.
- reading entropy (``random``, ``numpy.random``, wall/monotonic clocks,
  ``uuid``, ``os.urandom``) inside a scoring/merge hot-path module,
  where any such value could leak into a score, a tie-break or a merge
  and defeat replay debugging.  Deadline bookkeeping that provably
  never feeds a result must carry a justified suppression — that *is*
  the whitelist.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.core import Checker, Finding, SourceFile, register

#: packages whose iteration order reaches results/merges
UNORDERED_SCOPE = (
    "repro.index",
    "repro.matching",
    "repro.metagraph",
    "repro.serving",
)

#: modules implementing scoring/merging itself: entropy-free zones
HOT_PATH_MODULES = frozenset(
    {
        "repro.index.compiled",
        "repro.learning.model",
        "repro.serving.protocol",
        "repro.serving.router",
        "repro.serving.shards",
    }
)

#: consumers that erase iteration order again (safe over a set)
_ORDER_INSENSITIVE_CALLS = frozenset(
    {
        "sorted", "min", "max", "sum", "len", "any", "all", "set",
        "frozenset", "dict", "Counter", "SortedUniverse",
    }
)

_ENTROPY_MODULES = {"random", "secrets", "uuid"}
_ENTROPY_ATTRS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "process_time"),
    ("os", "urandom"),
    ("os", "getrandom"),
    ("np", "random"),
    ("numpy", "random"),
}


def _call_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _is_set_expr(node: ast.AST, assigned_sets: set[str]) -> bool:
    """Whether ``node`` evaluates to a set/frozenset (syntactically)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and _call_name(node) in ("set", "frozenset"):
        return True
    if isinstance(node, ast.Name) and node.id in assigned_sets:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set algebra propagates setness (a | b, a - b, ...)
        return _is_set_expr(node.left, assigned_sets) and _is_set_expr(
            node.right, assigned_sets
        )
    return False


def _function_set_names(func: ast.AST) -> set[str]:
    """Names assigned a set expression anywhere in ``func``'s body.

    Deliberately coarse (no flow sensitivity): a name is "a set" if any
    assignment in the function binds it to a syntactic set expression
    and no assignment binds it to something else.
    """
    set_names: set[str] = set()
    other_names: set[str] = set()
    for node in ast.walk(func):
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        elif isinstance(node, ast.AugAssign):
            targets, value = [node.target], None  # |= keeps setness unknown
        for target in targets:
            if isinstance(target, ast.Name):
                if value is not None and _is_set_expr(value, set_names):
                    set_names.add(target.id)
                elif value is not None:
                    other_names.add(target.id)
    return set_names - other_names


@register
class UnorderedIterationChecker(Checker):
    """Set iteration order must not reach order-sensitive consumers."""

    rule = "unordered-iter"
    description = (
        "set/frozenset iteration feeding an order-sensitive consumer "
        "in index/, matching/ or serving/"
    )

    def applies_to(self, src: SourceFile) -> bool:
        return src.module.startswith(UNORDERED_SCOPE)

    def check(self, src: SourceFile) -> Iterator[Finding]:
        # per-function set-name inference; module scope counts too
        scopes: list[ast.AST] = [src.tree]
        scopes.extend(
            node
            for node in ast.walk(src.tree)
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            )
        )
        for scope in scopes:
            set_names = _function_set_names(scope)
            yield from self._check_scope(src, scope, set_names)

    def _walk_scope(self, scope: ast.AST) -> Iterator[ast.AST]:
        """Walk ``scope`` without descending into nested functions."""
        stack: list[ast.AST] = [scope]
        while stack:
            node = stack.pop()
            if node is not scope:
                yield node
            for child in ast.iter_child_nodes(node):
                if not isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    stack.append(child)

    def _check_scope(
        self,
        src: SourceFile,
        scope: ast.AST,
        set_names: set[str],
    ) -> Iterator[Finding]:
        for node in self._walk_scope(scope):
            if isinstance(node, ast.For) and _is_set_expr(node.iter, set_names):
                yield self._finding(src, node.iter, "a for-loop")
            elif isinstance(
                node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)
            ):
                for gen in node.generators:
                    if _is_set_expr(gen.iter, set_names) and not (
                        self._order_erased(src, node)
                    ):
                        yield self._finding(src, gen.iter, "a comprehension")
            elif isinstance(node, ast.Call):
                name = _call_name(node)
                if name in ("list", "tuple", "enumerate", "zip", "join"):
                    for arg in node.args:
                        if _is_set_expr(arg, set_names):
                            yield self._finding(src, arg, f"{name}()")

    def _order_erased(self, src: SourceFile, comp: ast.AST) -> bool:
        """A comprehension directly inside sorted()/min()/... is safe."""
        parent = src.parent(comp)
        return (
            isinstance(parent, ast.Call)
            and comp in parent.args
            and _call_name(parent) in _ORDER_INSENSITIVE_CALLS
        )

    def _finding(self, src: SourceFile, node: ast.AST, consumer: str) -> Finding:
        return self.finding(
            src,
            node,
            f"set iteration order reaches {consumer}; wrap in sorted(...) "
            "or justify with a suppression (set order varies across "
            "processes and breaks bit-identical results)",
        )


@register
class HotPathEntropyChecker(Checker):
    """Scoring/merge modules must not read clocks or randomness."""

    rule = "hot-path-entropy"
    description = (
        "random/clock/uuid use inside a scoring or merge hot-path module"
    )

    def applies_to(self, src: SourceFile) -> bool:
        return src.module in HOT_PATH_MODULES

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Attribute) and isinstance(
                node.value, ast.Name
            ):
                pair = (node.value.id, node.attr)
                if pair in _ENTROPY_ATTRS or (
                    node.value.id in _ENTROPY_MODULES
                ):
                    yield self.finding(
                        src,
                        node,
                        f"entropy source `{node.value.id}.{node.attr}` in a "
                        "scoring/merge hot path; values here must be pure "
                        "functions of the snapshot and the query",
                    )
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                module = getattr(node, "module", None) or ""
                names = [alias.name for alias in node.names]
                for bad in _ENTROPY_MODULES | {"numpy.random"}:
                    if bad in names or module == bad:
                        yield self.finding(
                            src,
                            node,
                            f"module `{bad}` imported in a scoring/merge "
                            "hot path; entropy must not be reachable here",
                        )
