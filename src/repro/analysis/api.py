"""Public-API hygiene checker: ``__all__`` and exported signatures.

The package re-exports its public surface through per-package
``__all__`` lists (``repro.serving``, ``repro.index``, ...).  Drift in
those lists is invisible until a downstream ``from repro.x import y``
breaks, so the checker pins the conventions:

- ``__all__`` must be a literal list/tuple of string constants (tools
  and humans both need to read it without executing the module);
- it must be **sorted** — diffs stay one-line and merge conflicts
  resolve themselves;
- every exported name must actually be bound at module top level (a
  def, class, assignment or import), and must not be underscored;
- an exported top-level function must be fully annotated: every
  parameter and the return type.  Exported classes get the same check
  on their ``__init__``.  Annotations are what make the public surface
  self-describing (and what ``mypy --strict`` enforces in CI).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.core import Checker, Finding, SourceFile, register


def _literal_strings(node: ast.expr) -> list[str] | None:
    """The string elements of a literal list/tuple, or None."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    values = []
    for elt in node.elts:
        if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
            values.append(elt.value)
        else:
            return None
    return values


def _top_level_bindings(tree: ast.Module) -> dict[str, ast.AST]:
    """Names bound at module top level, mapped to their binding node."""
    bound: dict[str, ast.AST] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound[node.name] = node
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound[target.id] = node
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                bound[node.target.id] = node
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                name = alias.asname or alias.name.split(".")[0]
                bound[name] = node
        elif isinstance(node, (ast.If, ast.Try)):
            # TYPE_CHECKING blocks, optional-dependency guards
            for sub in ast.walk(node):
                if isinstance(
                    sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    bound.setdefault(sub.name, sub)
                elif isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        if isinstance(target, ast.Name):
                            bound.setdefault(target.id, sub)
                elif isinstance(sub, (ast.Import, ast.ImportFrom)):
                    for alias in sub.names:
                        name = alias.asname or alias.name.split(".")[0]
                        bound.setdefault(name, sub)
    return bound


def _unannotated_params(func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    """Parameter names missing annotations (self/cls excluded)."""
    args = func.args
    params = list(args.posonlyargs) + list(args.args)
    missing = [
        arg.arg
        for index, arg in enumerate(params)
        if arg.annotation is None
        and not (index == 0 and arg.arg in ("self", "cls"))
    ]
    missing.extend(
        arg.arg for arg in args.kwonlyargs if arg.annotation is None
    )
    for star in (args.vararg, args.kwarg):
        if star is not None and star.annotation is None:
            missing.append(star.arg)
    return missing


@register
class ApiHygieneChecker(Checker):
    """``__all__`` consistency and annotated exported signatures."""

    rule = "api-hygiene"
    description = (
        "__all__ not a sorted literal of defined public names, or an "
        "exported signature missing annotations"
    )

    def check(self, src: SourceFile) -> Iterator[Finding]:
        dunder_all = self._find_all(src.tree)
        if dunder_all is None:
            return
        node, names = dunder_all
        if names is None:
            yield self.finding(
                src, node,
                "__all__ must be a literal list/tuple of string constants",
            )
            return
        if names != sorted(names):
            yield self.finding(
                src, node,
                "__all__ is not sorted; keep it alphabetical so diffs "
                "stay one-line",
            )
        if len(set(names)) != len(names):
            yield self.finding(src, node, "__all__ contains duplicates")
        bound = _top_level_bindings(src.tree)
        for name in names:
            is_dunder = name.startswith("__") and name.endswith("__")
            if name.startswith("_") and not is_dunder:
                # `__version__` etc. are conventional exports; a single
                # leading underscore in __all__ is always a mistake
                yield self.finding(
                    src, node,
                    f"__all__ exports underscored name `{name}`",
                )
            elif name not in bound:
                yield self.finding(
                    src, node,
                    f"__all__ exports `{name}` but the module never binds "
                    "it at top level",
                )
        yield from self._check_signatures(src, names, bound)

    def _find_all(
        self, tree: ast.Module
    ) -> tuple[ast.AST, list[str] | None] | None:
        for node in tree.body:
            if (
                isinstance(node, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "__all__"
                    for t in node.targets
                )
            ):
                return node, _literal_strings(node.value)
        return None

    def _check_signatures(
        self,
        src: SourceFile,
        names: list[str],
        bound: dict[str, ast.AST],
    ) -> Iterator[Finding]:
        for name in names:
            target = bound.get(name)
            if isinstance(target, ast.ClassDef):
                target = next(
                    (
                        item
                        for item in target.body
                        if isinstance(item, ast.FunctionDef)
                        and item.name == "__init__"
                    ),
                    None,
                )
                if target is None:
                    continue
            if not isinstance(target, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            missing = _unannotated_params(target)
            if missing:
                yield self.finding(
                    src, target,
                    f"exported `{name}` has unannotated parameter(s) "
                    f"{missing}",
                )
            if target.returns is None and target.name != "__init__":
                yield self.finding(
                    src, target,
                    f"exported `{name}` has no return annotation",
                )
