"""``python -m repro`` dispatches to the CLI."""

import os
import sys

from repro.cli import main

try:
    sys.exit(main())
except BrokenPipeError:
    # downstream pager/head closed the pipe: exit quietly like a good
    # unix citizen (devnull swap stops the interpreter's own flush of
    # sys.stdout from raising again)
    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    sys.exit(0)
