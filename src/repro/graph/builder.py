"""Incremental, optionally schema-validated graph construction.

:class:`GraphBuilder` offers a fluent interface for assembling a
:class:`~repro.graph.typed_graph.TypedGraph`.  Dataset generators use it
to attach attribute nodes ("Alice" --edge--> "College A") without
worrying about whether the attribute node exists yet.
"""

from __future__ import annotations

from repro.exceptions import SchemaError
from repro.graph.schema import GraphSchema
from repro.graph.typed_graph import PLAIN, EdgeKind, NodeId, TypedGraph


class GraphBuilder:
    """Build a :class:`TypedGraph`, optionally validating against a schema.

    Examples
    --------
    >>> builder = GraphBuilder(name="toy")
    >>> _ = builder.node("Alice", "user").node("CS", "major")
    >>> _ = builder.edge("Alice", "CS")
    >>> graph = builder.build()
    >>> graph.num_edges
    1
    """

    def __init__(self, name: str = "", schema: GraphSchema | None = None):
        self._graph = TypedGraph(name=name)
        self._schema = schema

    def node(self, node: NodeId, node_type: str) -> "GraphBuilder":
        """Add a node (idempotent for identical type); returns self."""
        if self._schema is not None and not self._schema.has_type(node_type):
            raise SchemaError(f"type {node_type!r} is not declared in the schema")
        self._graph.add_node(node, node_type)
        return self

    def edge(
        self, u: NodeId, v: NodeId, kind: EdgeKind = PLAIN
    ) -> "GraphBuilder":
        """Add an edge (of an optional kind) between existing nodes.

        For a directed ``kind`` the orientation is ``u -> v``.
        """
        if self._schema is not None:
            pair = (self._graph.node_type(u), self._graph.node_type(v))
            if not self._schema.allows_edge(*pair, kind):
                raise SchemaError(
                    f"edge ({u!r}, {v!r}) of kind {kind!r} connects "
                    f"disallowed type pair {pair}"
                )
        self._graph.add_edge(u, v, kind)
        return self

    def attach(self, node: NodeId, attribute: NodeId, attribute_type: str) -> "GraphBuilder":
        """Connect ``node`` to an attribute node, creating it if needed.

        This is the common dataset-generation idiom: the attribute value
        (e.g. a particular school) is itself a node shared by every
        object that owns it.
        """
        self.node(attribute, attribute_type)
        self.edge(node, attribute)
        return self

    @property
    def graph(self) -> TypedGraph:
        """The graph under construction (live reference)."""
        return self._graph

    def build(self, validate: bool = True) -> TypedGraph:
        """Finish construction and return the graph.

        If a schema was supplied and ``validate`` is true, the complete
        graph is validated once more (catching edges added around the
        builder through the live reference).
        """
        if validate and self._schema is not None:
            self._schema.validate_graph(self._graph)
        return self._graph
