"""Graph schema: node types plus permitted edge rules (type pair x kind).

A :class:`GraphSchema` describes which node types exist and which edges
may connect them.  Historically an edge rule was an unordered pair of
types; the schema now carries full **edge rules** ``(type, type,
EdgeKind)`` so labeled and directed edges are first-class.  Directed
rules are oriented (source type first); undirected rules normalise the
type pair.  The plain unlabeled-undirected kind keeps every legacy
dataset working unchanged: ``edge_pairs`` still constructs and exposes
plain rules, and :attr:`GraphSchema.edge_kinds` — the compatibility
flag recorded in snapshot manifests — stays ``False`` until a non-plain
rule is declared.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.exceptions import SchemaError
from repro.graph.typed_graph import PLAIN, EdgeKind, TypedGraph

#: a permitted edge: (type_a, type_b, kind); oriented iff kind.directed
EdgeRule = tuple[str, str, EdgeKind]


def _norm_pair(a: str, b: str) -> tuple[str, str]:
    return (a, b) if a <= b else (b, a)


def _norm_rule(a: str, b: str, kind: EdgeKind) -> EdgeRule:
    if kind.directed:
        return (a, b, kind)
    return (*_norm_pair(a, b), kind)


def _coerce_rule(rule: tuple) -> EdgeRule:
    if len(rule) == 2:
        a, b = rule
        return _norm_rule(a, b, PLAIN)
    if len(rule) == 3:
        a, b, kind = rule
        if not isinstance(kind, EdgeKind):
            if not (isinstance(kind, tuple) and len(kind) == 2):
                raise SchemaError(f"malformed edge rule kind: {kind!r}")
            kind = EdgeKind(str(kind[0]), bool(kind[1]))
        return _norm_rule(a, b, kind)
    raise SchemaError(f"malformed edge rule: {rule!r}")


class GraphSchema:
    """Declarative description of a heterogeneous graph's type structure.

    Parameters
    ----------
    types:
        The node types T.
    edge_pairs:
        Unordered pairs of types that plain (unlabeled, undirected)
        edges may connect.  Pairs may repeat a type (e.g.
        ``("user", "user")`` for friendships).
    edge_rules:
        Full ``(type_a, type_b, EdgeKind)`` rules.  Rules with a
        directed kind are oriented (``type_a`` is the source type);
        undirected rules are normalised.  Two-tuples are accepted and
        treated as plain pairs.

    Examples
    --------
    >>> schema = GraphSchema(
    ...     types=["user", "school"],
    ...     edge_pairs=[("user", "school")],
    ... )
    >>> schema.allows_edge("school", "user")
    True
    >>> schema.allows_edge("user", "user")
    False
    """

    def __init__(
        self,
        types: Iterable[str],
        edge_pairs: Iterable[tuple[str, str]] = (),
        edge_rules: Iterable[tuple] = (),
    ):
        self._types = frozenset(types)
        if not self._types:
            raise SchemaError("schema must declare at least one type")
        rules: set[EdgeRule] = set()
        for a, b in edge_pairs:
            rules.add(_coerce_rule((a, b)))
        for rule in edge_rules:
            rules.add(_coerce_rule(tuple(rule)))
        for a, b, kind in rules:
            if a not in self._types or b not in self._types:
                raise SchemaError(
                    f"edge rule ({a!r}, {b!r}, {kind!r}) references a "
                    f"type outside {sorted(self._types)}"
                )
        self._edge_rules = frozenset(rules)

    @property
    def types(self) -> frozenset[str]:
        """The declared node types."""
        return self._types

    @property
    def edge_pairs(self) -> frozenset[tuple[str, str]]:
        """The declared (sorted) type pairs of *plain* edge rules."""
        return frozenset(
            (a, b) for a, b, kind in self._edge_rules if kind == PLAIN
        )

    @property
    def edge_rules(self) -> frozenset[EdgeRule]:
        """All declared edge rules (type pair x kind)."""
        return self._edge_rules

    @property
    def edge_kinds(self) -> bool:
        """Compatibility flag: True iff any non-plain rule is declared.

        Recorded in snapshot manifests; loading a kinded snapshot
        against a plain graph (or vice versa) raises
        :class:`SchemaError` instead of producing garbage counts.
        """
        return any(kind != PLAIN for _, _, kind in self._edge_rules)

    def has_type(self, node_type: str) -> bool:
        """True iff ``node_type`` is declared."""
        return node_type in self._types

    def allows_edge(
        self, type_a: str, type_b: str, kind: EdgeKind = PLAIN
    ) -> bool:
        """True iff an edge of ``kind`` may connect the two types.

        For a directed kind the argument order is the orientation
        (``type_a`` is the source type).
        """
        return _norm_rule(type_a, type_b, kind) in self._edge_rules

    def validate_graph(self, graph: TypedGraph) -> None:
        """Raise :class:`SchemaError` if the graph violates this schema."""
        for node in graph.nodes():
            node_type = graph.node_type(node)
            if node_type not in self._types:
                raise SchemaError(
                    f"node {node!r} has undeclared type {node_type!r}"
                )
        for u, v, kind in graph.edges_with_kinds():
            if not self.allows_edge(
                graph.node_type(u), graph.node_type(v), kind
            ):
                raise SchemaError(
                    f"edge ({u!r}, {v!r}) of kind {kind!r} connects a "
                    f"disallowed type rule"
                )

    @classmethod
    def infer(cls, graph: TypedGraph) -> "GraphSchema":
        """Infer the schema actually realised by a graph."""
        if graph.num_nodes == 0:
            raise SchemaError("cannot infer a schema from an empty graph")
        return cls(types=graph.types, edge_rules=graph.observed_edge_rules())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphSchema):
            return NotImplemented
        return self._types == other._types and self._edge_rules == other._edge_rules

    def __repr__(self) -> str:
        return (
            f"<GraphSchema: {len(self._types)} types, "
            f"{len(self._edge_rules)} edge rules>"
        )
