"""Graph schema: the set of node types and permitted edge type pairs.

A :class:`GraphSchema` describes which node types exist and which
(unordered) pairs of types may be connected by an edge.  Datasets declare
their schema up front; :class:`repro.graph.builder.GraphBuilder` can
validate a graph against it, and the miner uses it to prune pattern growth.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.exceptions import SchemaError
from repro.graph.typed_graph import TypedGraph


def _norm_pair(a: str, b: str) -> tuple[str, str]:
    return (a, b) if a <= b else (b, a)


class GraphSchema:
    """Declarative description of a heterogeneous graph's type structure.

    Parameters
    ----------
    types:
        The node types T.
    edge_pairs:
        Unordered pairs of types that edges may connect.  Pairs may
        repeat a type (e.g. ``("user", "user")`` for friendships).

    Examples
    --------
    >>> schema = GraphSchema(
    ...     types=["user", "school"],
    ...     edge_pairs=[("user", "school")],
    ... )
    >>> schema.allows_edge("school", "user")
    True
    >>> schema.allows_edge("user", "user")
    False
    """

    def __init__(
        self,
        types: Iterable[str],
        edge_pairs: Iterable[tuple[str, str]],
    ):
        self._types = frozenset(types)
        if not self._types:
            raise SchemaError("schema must declare at least one type")
        pairs = set()
        for a, b in edge_pairs:
            if a not in self._types or b not in self._types:
                raise SchemaError(
                    f"edge pair ({a!r}, {b!r}) references a type outside {sorted(self._types)}"
                )
            pairs.add(_norm_pair(a, b))
        self._edge_pairs = frozenset(pairs)

    @property
    def types(self) -> frozenset[str]:
        """The declared node types."""
        return self._types

    @property
    def edge_pairs(self) -> frozenset[tuple[str, str]]:
        """The declared (sorted) edge type pairs."""
        return self._edge_pairs

    def has_type(self, node_type: str) -> bool:
        """True iff ``node_type`` is declared."""
        return node_type in self._types

    def allows_edge(self, type_a: str, type_b: str) -> bool:
        """True iff an edge may connect nodes of the two types."""
        return _norm_pair(type_a, type_b) in self._edge_pairs

    def validate_graph(self, graph: TypedGraph) -> None:
        """Raise :class:`SchemaError` if the graph violates this schema."""
        for node in graph.nodes():
            node_type = graph.node_type(node)
            if node_type not in self._types:
                raise SchemaError(
                    f"node {node!r} has undeclared type {node_type!r}"
                )
        for u, v in graph.edges():
            pair = graph.edge_type_pair(u, v)
            if pair not in self._edge_pairs:
                raise SchemaError(
                    f"edge ({u!r}, {v!r}) connects disallowed type pair {pair}"
                )

    @classmethod
    def infer(cls, graph: TypedGraph) -> "GraphSchema":
        """Infer the schema actually realised by a graph."""
        if graph.num_nodes == 0:
            raise SchemaError("cannot infer a schema from an empty graph")
        return cls(types=graph.types, edge_pairs=graph.observed_type_pairs())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphSchema):
            return NotImplemented
        return self._types == other._types and self._edge_pairs == other._edge_pairs

    def __repr__(self) -> str:
        return (
            f"<GraphSchema: {len(self._types)} types, "
            f"{len(self._edge_pairs)} edge pairs>"
        )
