"""Integer-CSR view of a :class:`TypedGraph` for the compiled matcher.

The matching engines in :mod:`repro.matching` spend their time in
per-candidate Python work: hashing arbitrary (string/tuple) node ids
into dict-of-set adjacency, one candidate at a time.  This module
re-lays the same graph into flat numpy arrays so the compiled engine
(:mod:`repro.matching.compiled`) can do that work on whole candidate
*arrays* instead:

- nodes get dense ``int32`` ids **partitioned by type** (types in
  sorted order, nodes within a type sorted by ``repr`` — deterministic
  under hash randomisation), so "all nodes of type t" is a contiguous
  id range;
- adjacency is CSR (``indptr``/``indices``) with each row sorted
  ascending.  Because ids are partitioned by type, a sorted row is also
  grouped by type, and ``type_ptr`` records the per-row block
  boundaries: the typed adjacency of any node is an O(1) array slice;
- ``profiles`` holds each node's per-type neighbour counts — the
  neighbourhood-profile matrix that turns TurboISO's per-node candidate
  filter into one vectorised comparison;
- per-type node and edge totals back the estimated-instance-count
  matching order without an O(|E|) rescan per pattern.

:func:`csr_view` caches the view on the graph object and rebuilds it
when :attr:`TypedGraph.version` moves, so the offline build pays one
O(V + E) layout pass per graph version however many patterns it
matches.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.graph.typed_graph import NodeId, TypedGraph

_CACHE_ATTR = "_csr_view_cache"


class CSRGraph:
    """Immutable integer-CSR snapshot of one :class:`TypedGraph` version.

    Build with :meth:`from_graph` (or the cached :func:`csr_view`).
    The arrays are documented in the module docstring; node ids decode
    through :attr:`node_ids` and encode through :attr:`id_of` (rebuilt
    lazily after unpickling, so shipping a snapshot to a worker process
    moves only the compact arrays).
    """

    def __init__(
        self,
        *,
        version: int,
        type_names: tuple[str, ...],
        type_start: np.ndarray,
        node_ids: tuple[NodeId, ...],
        indptr: np.ndarray,
        indices: np.ndarray,
        type_ptr: np.ndarray,
        profiles: np.ndarray,
        edge_type_counts: np.ndarray,
        sig_names: tuple[tuple[str, int], ...] = (),
        edge_sig: np.ndarray | None = None,
        sig_profiles: np.ndarray | None = None,
    ):
        self.version = version
        self.type_names = type_names
        self.type_start = type_start
        self.node_ids = node_ids
        self.indptr = indptr
        self.indices = indices
        self.type_ptr = type_ptr
        self.profiles = profiles
        self.edge_type_counts = edge_type_counts
        # edge-kind layer (built only for graphs with non-plain kinds):
        # sig_names enumerates the observed per-endpoint signatures
        # (label, rel) with rel 0 = undirected, 1 = outgoing, -1 =
        # incoming; edge_sig is parallel to ``indices`` and carries the
        # signature code of each (row -> neighbour) entry from the row
        # node's perspective; sig_profiles counts neighbours per
        # (type, signature) column ``type_code * num_sigs + sig_code``.
        self.sig_names = sig_names
        self.edge_sig = edge_sig
        self.sig_profiles = sig_profiles
        self._type_index = {name: i for i, name in enumerate(type_names)}
        self._sig_index = {sig: i for i, sig in enumerate(sig_names)}
        self._id_of: dict[NodeId, int] | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: TypedGraph) -> "CSRGraph":
        """Lay a graph out into CSR arrays (one pass over nodes + edges)."""
        type_names = tuple(sorted(graph.types))
        node_ids: list[NodeId] = []
        starts = [0]
        for name in type_names:
            node_ids.extend(sorted(graph.nodes_of_type(name), key=repr))
            starts.append(len(node_ids))
        n = len(node_ids)
        num_types = len(type_names)
        type_start = np.asarray(starts, dtype=np.int64)
        id_of = {node: i for i, node in enumerate(node_ids)}

        kinded = graph.has_kinds
        heads = np.empty(graph.num_edges, dtype=np.int64)
        tails = np.empty(graph.num_edges, dtype=np.int64)
        head_sig: list[tuple[str, int]] = []
        tail_sig: list[tuple[str, int]] = []
        for k, (u, v) in enumerate(graph.edges()):
            heads[k] = id_of[u]
            tails[k] = id_of[v]
            if kinded:
                label, rel = graph.edge_signature(u, v)
                head_sig.append((label, rel))
                tail_sig.append((label, -rel))
        src = np.concatenate([heads, tails])
        dst = np.concatenate([tails, heads])
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]

        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
        indices = dst.astype(np.int32)

        sig_names: tuple[tuple[str, int], ...] = ()
        edge_sig: np.ndarray | None = None
        if kinded:
            sig_names = tuple(sorted(set(head_sig) | set(tail_sig)))
            sig_code = {sig: i for i, sig in enumerate(sig_names)}
            raw_sig = np.asarray(
                [sig_code[sig] for sig in head_sig]
                + [sig_code[sig] for sig in tail_sig],
                dtype=np.int16,
            )
            edge_sig = raw_sig[order]

        type_of = np.empty(max(n, 1), dtype=np.int64)[:n]
        for code in range(num_types):
            type_of[type_start[code] : type_start[code + 1]] = code
        profiles = np.zeros((n, num_types), dtype=np.int64)
        if indices.size:
            row_of = np.repeat(np.arange(n), np.diff(indptr))
            np.add.at(profiles, (row_of, type_of[indices]), 1)
        type_ptr = np.empty((n, num_types + 1), dtype=np.int64)
        type_ptr[:, 0] = indptr[:-1]
        np.cumsum(profiles, axis=1, out=type_ptr[:, 1:])
        type_ptr[:, 1:] += indptr[:-1, None]

        edge_type_counts = np.zeros((num_types, num_types), dtype=np.int64)
        if heads.size:
            a = np.minimum(type_of[heads], type_of[tails])
            b = np.maximum(type_of[heads], type_of[tails])
            np.add.at(edge_type_counts, (a, b), 1)

        sig_profiles: np.ndarray | None = None
        if kinded:
            num_sigs = len(sig_names)
            sig_profiles = np.zeros((n, num_types * num_sigs), dtype=np.int64)
            if indices.size and edge_sig is not None:
                row_of = np.repeat(np.arange(n), np.diff(indptr))
                cols = type_of[indices] * num_sigs + edge_sig.astype(np.int64)
                np.add.at(sig_profiles, (row_of, cols), 1)

        built = cls(
            version=graph.version,
            type_names=type_names,
            type_start=type_start,
            node_ids=tuple(node_ids),
            indptr=indptr,
            indices=indices,
            type_ptr=type_ptr,
            profiles=profiles,
            edge_type_counts=edge_type_counts,
            sig_names=sig_names,
            edge_sig=edge_sig,
            sig_profiles=sig_profiles,
        )
        built._id_of = id_of
        return built

    # ------------------------------------------------------------------
    # pickling: ship arrays, rebuild the id dict lazily on the far side
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_id_of"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        state.setdefault("sig_names", ())
        state.setdefault("edge_sig", None)
        state.setdefault("sig_profiles", None)
        self.__dict__.update(state)
        self._type_index = {name: i for i, name in enumerate(self.type_names)}
        self._sig_index = {sig: i for i, sig in enumerate(self.sig_names)}

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes |V|."""
        return len(self.node_ids)

    @property
    def num_types(self) -> int:
        """Number of node types |T|."""
        return len(self.type_names)

    @property
    def id_of(self) -> dict[NodeId, int]:
        """Original node id -> dense int id (lazily rebuilt after pickling)."""
        if self._id_of is None:
            self._id_of = {node: i for i, node in enumerate(self.node_ids)}
        return self._id_of

    def type_id(self, name: str) -> int | None:
        """Dense type code for a type name (None when absent)."""
        return self._type_index.get(name)

    def type_range(self, code: int) -> tuple[int, int]:
        """Dense-id half-open range [lo, hi) of the nodes of one type."""
        return int(self.type_start[code]), int(self.type_start[code + 1])

    def type_count(self, code: int) -> int:
        """Number of nodes of one type."""
        lo, hi = self.type_range(code)
        return hi - lo

    def neighbors(self, node: int) -> np.ndarray:
        """Sorted dense-id neighbour row of ``node`` (a view, not a copy)."""
        return self.indices[self.indptr[node] : self.indptr[node + 1]]

    def typed_neighbors(self, node: int, code: int) -> np.ndarray:
        """Sorted neighbours of ``node`` with type ``code`` (O(1) slice)."""
        return self.indices[self.type_ptr[node, code] : self.type_ptr[node, code + 1]]

    @property
    def has_kinds(self) -> bool:
        """True iff the source graph carried non-plain edge kinds."""
        return self.edge_sig is not None

    @property
    def num_sigs(self) -> int:
        """Number of distinct observed edge signatures."""
        return len(self.sig_names)

    def sig_id(self, label: str, rel: int) -> int | None:
        """Dense code for an edge signature (None when never observed)."""
        return self._sig_index.get((label, rel))

    def typed_neighbors_sig(self, node: int, code: int, sig: int) -> np.ndarray:
        """Sorted neighbours of ``node`` of type ``code`` via signature ``sig``.

        Masks the typed slice by the parallel ``edge_sig`` array; the
        result stays ascending because masking preserves slice order.
        Only valid on kinded views (``has_kinds``).
        """
        lo, hi = self.type_ptr[node, code], self.type_ptr[node, code + 1]
        assert self.edge_sig is not None
        sigs = self.edge_sig[lo:hi]
        return self.indices[lo:hi][sigs == sig]

    def has_edge(self, u: int, v: int) -> bool:
        """True iff the undirected edge (u, v) exists (binary search)."""
        row = self.neighbors(u)
        k = int(np.searchsorted(row, v))
        return k < row.size and int(row[k]) == v

    def encode(self, nodes: Iterable[NodeId]) -> np.ndarray:
        """Sorted dense-id array for the given original node ids.

        Ids absent from the graph are silently dropped — callers pass
        candidate restrictions (regions, pools) that may mention nodes
        removed since they were computed.
        """
        id_of = self.id_of
        kept = [id_of[node] for node in nodes if node in id_of]
        out = np.asarray(sorted(kept), dtype=self.indices.dtype)
        return out

    def cardinalities(self) -> "CSRCardinalities":
        """Type statistics compatible with the matching-order heuristics."""
        return CSRCardinalities(self)


class CSRCardinalities:
    """|I(t)| / |I(<t1, t2>)| statistics answered from the CSR arrays.

    Duck-typed drop-in for
    :class:`repro.matching.ordering.GraphCardinalities`, but O(1) to
    construct — the per-type totals were accumulated during the CSR
    layout pass instead of rescanning every edge per pattern.
    """

    def __init__(self, csr: CSRGraph):
        self._csr = csr

    def nodes_of(self, node_type: str) -> int:
        code = self._csr.type_id(node_type)
        return 0 if code is None else self._csr.type_count(code)

    def edges_of(self, type_a: str, type_b: str) -> int:
        csr = self._csr
        a, b = csr.type_id(type_a), csr.type_id(type_b)
        if a is None or b is None:
            return 0
        return int(csr.edge_type_counts[min(a, b), max(a, b)])


def csr_view(graph: TypedGraph) -> CSRGraph:
    """The graph's CSR view, cached on the graph object.

    Rebuilt when (and only when) :attr:`TypedGraph.version` moved since
    the cached view was laid out, so mutation via ``apply_updates`` or
    direct graph edits can never serve stale adjacency.
    """
    cached: CSRGraph | None = getattr(graph, _CACHE_ATTR, None)
    if cached is None or cached.version != graph.version:
        cached = CSRGraph.from_graph(graph)
        setattr(graph, _CACHE_ATTR, cached)
    return cached
