"""Typed object graph: the heterogeneous graph substrate of the paper.

The paper (Sect. II-A) models data as an undirected *typed object graph*
``G = (V, E)`` with a type mapping ``tau: V -> T``.  :class:`TypedGraph`
implements this with:

- arbitrary hashable node ids, each with a mandatory string type;
- undirected, unweighted, simple edges (no self-loops, no multi-edges);
- O(1) adjacency and typed-adjacency lookups, the workhorse of the
  subgraph matching engines in :mod:`repro.matching`.

The class is deliberately minimal and append-only plus node/edge removal;
mutation invalidates nothing because all indexes are maintained eagerly.
Every *effective* mutation (no-ops excluded) bumps :attr:`TypedGraph.version`,
which downstream artefacts (cached universes, metagraph indexes) compare
against to detect that they were built on an older graph.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Hashable, Iterable, Iterator

from repro.exceptions import (
    DuplicateNodeError,
    EdgeError,
    NodeNotFoundError,
    SchemaError,
)

NodeId = Hashable


def edge_key(u: NodeId, v: NodeId) -> tuple[NodeId, NodeId]:
    """Return the canonical (sorted) representation of an undirected edge.

    Node ids of mixed, non-comparable Python types are ordered by their
    ``repr`` so that the key is deterministic.
    """
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


class TypedGraph:
    """An undirected heterogeneous graph with typed nodes.

    Parameters
    ----------
    name:
        Optional human-readable name used in reports and experiment output.

    Examples
    --------
    >>> g = TypedGraph(name="toy")
    >>> g.add_node("Alice", "user")
    >>> g.add_node("College A", "school")
    >>> g.add_edge("Alice", "College A")
    >>> g.node_type("Alice")
    'user'
    >>> sorted(g.neighbors("Alice"))
    ['College A']
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._types: dict[NodeId, str] = {}
        self._adj: dict[NodeId, set[NodeId]] = {}
        # typed adjacency: node -> type -> set of neighbours of that type
        self._typed_adj: dict[NodeId, dict[str, set[NodeId]]] = {}
        self._nodes_by_type: dict[str, set[NodeId]] = defaultdict(set)
        self._num_edges = 0
        self._version = 0

    @property
    def version(self) -> int:
        """Mutation counter: bumped by every effective structure change.

        No-op calls (re-adding an existing node/edge) leave it untouched,
        so two equal versions of one graph object imply identical
        structure.
        """
        return self._version

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId, node_type: str) -> None:
        """Add a node with the given type.

        Re-adding an existing node with the *same* type is a no-op;
        re-adding with a different type raises :class:`DuplicateNodeError`.
        """
        if not isinstance(node_type, str) or not node_type:
            raise SchemaError(
                f"node type must be a non-empty string, got {node_type!r}"
            )
        existing = self._types.get(node)
        if existing is not None:
            if existing != node_type:
                raise DuplicateNodeError(node, existing, node_type)
            return
        self._types[node] = node_type
        self._adj[node] = set()
        self._typed_adj[node] = defaultdict(set)
        self._nodes_by_type[node_type].add(node)
        self._version += 1

    def add_edge(self, u: NodeId, v: NodeId) -> None:
        """Add an undirected edge between two existing nodes.

        Self-loops are rejected; adding an existing edge is a no-op.
        """
        if u == v:
            raise EdgeError(f"self-loops are not allowed (node {u!r})")
        for endpoint in (u, v):
            if endpoint not in self._types:
                raise NodeNotFoundError(endpoint)
        if v in self._adj[u]:
            return
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._typed_adj[u][self._types[v]].add(v)
        self._typed_adj[v][self._types[u]].add(u)
        self._num_edges += 1
        self._version += 1

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        """Remove an undirected edge; raises :class:`EdgeError` if absent."""
        if u not in self._types or v not in self._types:
            raise NodeNotFoundError(u if u not in self._types else v)
        if v not in self._adj[u]:
            raise EdgeError(f"edge ({u!r}, {v!r}) is not in the graph")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._discard_typed(u, v)
        self._discard_typed(v, u)
        self._num_edges -= 1
        self._version += 1

    def _discard_typed(self, node: NodeId, neighbor: NodeId) -> None:
        """Drop ``neighbor`` from ``node``'s typed adjacency, pruning the
        type bucket when it empties — an empty bucket would otherwise
        surface a phantom neighbour type to the matchers' ordering
        heuristics via :meth:`typed_adjacency`."""
        neighbor_type = self._types[neighbor]
        bucket = self._typed_adj[node][neighbor_type]
        bucket.discard(neighbor)
        if not bucket:
            del self._typed_adj[node][neighbor_type]

    def remove_node(self, node: NodeId) -> None:
        """Remove a node and all its incident edges."""
        if node not in self._types:
            raise NodeNotFoundError(node)
        for neighbor in list(self._adj[node]):
            self.remove_edge(node, neighbor)
        node_type = self._types.pop(node)
        del self._adj[node]
        del self._typed_adj[node]
        self._nodes_by_type[node_type].discard(node)
        if not self._nodes_by_type[node_type]:
            del self._nodes_by_type[node_type]
        self._version += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, node: NodeId) -> bool:
        return node in self._types

    def __len__(self) -> int:
        return len(self._types)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._types)

    @property
    def num_nodes(self) -> int:
        """Number of nodes |V|."""
        return len(self._types)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges |E|."""
        return self._num_edges

    def nodes(self) -> Iterator[NodeId]:
        """Iterate over all node ids."""
        return iter(self._types)

    def edges(self) -> Iterator[tuple[NodeId, NodeId]]:
        """Iterate over each undirected edge exactly once (canonical order)."""
        seen: set[tuple[NodeId, NodeId]] = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                key = edge_key(u, v)
                if key not in seen:
                    seen.add(key)
                    yield key

    def node_type(self, node: NodeId) -> str:
        """Return the type of ``node``."""
        try:
            return self._types[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """True iff the undirected edge (u, v) exists."""
        return u in self._adj and v in self._adj[u]

    def neighbors(self, node: NodeId) -> frozenset[NodeId]:
        """All neighbours of ``node`` (as an immutable snapshot view)."""
        try:
            return frozenset(self._adj[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def neighbors_of_type(self, node: NodeId, node_type: str) -> frozenset[NodeId]:
        """Neighbours of ``node`` whose type equals ``node_type``."""
        try:
            typed = self._typed_adj[node]
        except KeyError:
            raise NodeNotFoundError(node) from None
        return frozenset(typed.get(node_type, ()))

    def degree(self, node: NodeId) -> int:
        """Number of neighbours of ``node``."""
        try:
            return len(self._adj[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def typed_degree(self, node: NodeId, node_type: str) -> int:
        """Number of neighbours of ``node`` with the given type."""
        try:
            typed = self._typed_adj[node]
        except KeyError:
            raise NodeNotFoundError(node) from None
        return len(typed.get(node_type, ()))

    def typed_adjacency(self, node: NodeId) -> dict[str, set[NodeId]]:
        """Internal typed adjacency of ``node`` — **read-only** access.

        Returns the live index (no copy) so that the matching engines can
        iterate neighbours by type without per-call allocation.  Callers
        must not mutate the returned mapping or its sets.
        """
        try:
            return self._typed_adj[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def adjacency(self, node: NodeId) -> set[NodeId]:
        """Internal neighbour set of ``node`` — **read-only** access."""
        try:
            return self._adj[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    @property
    def types(self) -> frozenset[str]:
        """The set of node types T present in the graph."""
        return frozenset(self._nodes_by_type)

    def nodes_of_type(self, node_type: str) -> frozenset[NodeId]:
        """All nodes whose type equals ``node_type`` (empty if unknown)."""
        return frozenset(self._nodes_by_type.get(node_type, ()))

    def count_type(self, node_type: str) -> int:
        """Number of nodes of the given type."""
        return len(self._nodes_by_type.get(node_type, ()))

    def edge_type_pair(self, u: NodeId, v: NodeId) -> tuple[str, str]:
        """Sorted (type_u, type_v) pair for an edge's endpoints."""
        tu, tv = self.node_type(u), self.node_type(v)
        return (tu, tv) if tu <= tv else (tv, tu)

    def observed_type_pairs(self) -> frozenset[tuple[str, str]]:
        """All sorted type pairs that occur on at least one edge.

        The mining subsystem uses this to restrict pattern growth to
        type pairs that can actually match.
        """
        pairs = {self.edge_type_pair(u, v) for u, v in self.edges()}
        return frozenset(pairs)

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def induced_subgraph(self, nodes: Iterable[NodeId]) -> "TypedGraph":
        """Return the subgraph induced on ``nodes`` (copies structure)."""
        node_list = list(nodes)
        sub = TypedGraph(name=f"{self.name}#induced")
        for node in node_list:
            sub.add_node(node, self.node_type(node))
        node_set = set(node_list)
        for node in node_list:
            for nbr in self._adj[node]:
                if nbr in node_set and not sub.has_edge(node, nbr):
                    sub.add_edge(node, nbr)
        return sub

    def copy(self) -> "TypedGraph":
        """Deep structural copy (node ids are shared, structure is not)."""
        dup = TypedGraph(name=self.name)
        for node, node_type in self._types.items():
            dup.add_node(node, node_type)
        for u, v in self.edges():
            dup.add_edge(u, v)
        return dup

    def __getstate__(self) -> dict:
        # the cached CSR view (attached by repro.graph.csr.csr_view) is
        # derived state: shipping it alongside the graph would double the
        # pickle the parallel builder sends to every worker
        state = dict(self.__dict__)
        state.pop("_csr_view_cache", None)
        return state

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TypedGraph):
            return NotImplemented
        if self._types != other._types:
            return False
        return {edge_key(u, v) for u, v in self.edges()} == {
            edge_key(u, v) for u, v in other.edges()
        }

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<TypedGraph{label}: {self.num_nodes} nodes, "
            f"{self.num_edges} edges, {len(self._nodes_by_type)} types>"
        )
