"""Typed object graph: the heterogeneous graph substrate of the paper.

The paper (Sect. II-A) models data as an undirected *typed object graph*
``G = (V, E)`` with a type mapping ``tau: V -> T``.  :class:`TypedGraph`
implements this with:

- arbitrary hashable node ids, each with a mandatory string type;
- unweighted, simple edges (no self-loops, no multi-edges), each
  optionally carrying an :class:`EdgeKind` — a label plus a
  directedness flag.  The default :data:`PLAIN` kind reproduces the
  paper's undirected unlabeled edges exactly; connectivity queries
  (:meth:`TypedGraph.neighbors`, :meth:`TypedGraph.has_edge`) ignore
  direction, while :meth:`TypedGraph.edge_signature` exposes the kind
  constraint the matchers enforce;
- O(1) adjacency and typed-adjacency lookups, the workhorse of the
  subgraph matching engines in :mod:`repro.matching`.

The class is deliberately minimal and append-only plus node/edge removal;
mutation invalidates nothing because all indexes are maintained eagerly.
Every *effective* mutation (no-ops excluded) bumps :attr:`TypedGraph.version`,
which downstream artefacts (cached universes, metagraph indexes) compare
against to detect that they were built on an older graph.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Hashable, Iterable, Iterator
from typing import NamedTuple

from repro.exceptions import (
    DuplicateNodeError,
    EdgeError,
    NodeNotFoundError,
    SchemaError,
)

NodeId = Hashable


class EdgeKind(NamedTuple):
    """The kind of an edge: a label crossed with a directedness flag.

    ``EdgeKind("", False)`` (the :data:`PLAIN` default) reproduces the
    paper's original unlabeled-undirected edges; every pre-existing
    dataset and snapshot uses it implicitly.  A directed kind's
    orientation is the argument order of the :meth:`TypedGraph.add_edge`
    call that created the edge (``u -> v``).
    """

    label: str = ""
    directed: bool = False


#: the back-compat default kind: unlabeled, undirected
PLAIN = EdgeKind("", False)

#: an edge signature relative to a (u, v) argument order:
#: (label, rel) with rel 0 = undirected, 1 = u->v, -1 = v->u
EdgeSignature = tuple[str, int]


def _coerce_kind(kind: object) -> EdgeKind:
    if isinstance(kind, EdgeKind):
        return kind
    if isinstance(kind, tuple) and len(kind) == 2:
        label, directed = kind
        if isinstance(label, str) and isinstance(directed, bool):
            return EdgeKind(label, directed)
    raise EdgeError(f"edge kind must be an EdgeKind, got {kind!r}")


def edge_key(u: NodeId, v: NodeId) -> tuple[NodeId, NodeId]:
    """Return the canonical (sorted) representation of an undirected edge.

    Node ids of mixed, non-comparable Python types are ordered by their
    ``repr`` so that the key is deterministic.
    """
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


class TypedGraph:
    """An undirected heterogeneous graph with typed nodes.

    Parameters
    ----------
    name:
        Optional human-readable name used in reports and experiment output.

    Examples
    --------
    >>> g = TypedGraph(name="toy")
    >>> g.add_node("Alice", "user")
    >>> g.add_node("College A", "school")
    >>> g.add_edge("Alice", "College A")
    >>> g.node_type("Alice")
    'user'
    >>> sorted(g.neighbors("Alice"))
    ['College A']
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._types: dict[NodeId, str] = {}
        self._adj: dict[NodeId, set[NodeId]] = {}
        # typed adjacency: node -> type -> set of neighbours of that type
        self._typed_adj: dict[NodeId, dict[str, set[NodeId]]] = {}
        self._nodes_by_type: dict[str, set[NodeId]] = defaultdict(set)
        # sparse kind store: only non-PLAIN edges appear, keyed by the
        # canonical edge key, valued (kind, forward) where ``forward``
        # records whether the canonical key order is the source->target
        # orientation of a directed kind.  Plain graphs keep this empty,
        # so ``has_kinds`` is O(1) and plain behaviour is bit-identical.
        self._edge_kinds: dict[tuple[NodeId, NodeId], tuple[EdgeKind, bool]] = {}
        self._num_edges = 0
        self._version = 0

    @property
    def version(self) -> int:
        """Mutation counter: bumped by every effective structure change.

        No-op calls (re-adding an existing node/edge) leave it untouched,
        so two equal versions of one graph object imply identical
        structure.
        """
        return self._version

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId, node_type: str) -> None:
        """Add a node with the given type.

        Re-adding an existing node with the *same* type is a no-op;
        re-adding with a different type raises :class:`DuplicateNodeError`.
        """
        if not isinstance(node_type, str) or not node_type:
            raise SchemaError(
                f"node type must be a non-empty string, got {node_type!r}"
            )
        existing = self._types.get(node)
        if existing is not None:
            if existing != node_type:
                raise DuplicateNodeError(node, existing, node_type)
            return
        self._types[node] = node_type
        self._adj[node] = set()
        self._typed_adj[node] = defaultdict(set)
        self._nodes_by_type[node_type].add(node)
        self._version += 1

    def add_edge(self, u: NodeId, v: NodeId, kind: EdgeKind = PLAIN) -> None:
        """Add an edge of the given kind between two existing nodes.

        Self-loops are rejected; re-adding an existing edge with the
        *same* kind (and, for directed kinds, the same orientation) is a
        no-op, while a conflicting kind raises :class:`EdgeError` — the
        graph is simple, so one node pair carries at most one edge kind.
        For a directed ``kind`` the orientation is ``u -> v``.
        """
        if u == v:
            raise EdgeError(f"self-loops are not allowed (node {u!r})")
        for endpoint in (u, v):
            if endpoint not in self._types:
                raise NodeNotFoundError(endpoint)
        kind = _coerce_kind(kind)
        key = edge_key(u, v)
        entry = self._entry_for(key, u, kind)
        if v in self._adj[u]:
            existing = self._edge_kinds.get(key, (PLAIN, True))
            if existing != entry:
                raise EdgeError(
                    f"edge ({u!r}, {v!r}) already exists with a "
                    f"conflicting kind {existing[0]!r}; cannot re-add "
                    f"as {kind!r}"
                )
            return
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._typed_adj[u][self._types[v]].add(v)
        self._typed_adj[v][self._types[u]].add(u)
        if kind != PLAIN:
            self._edge_kinds[key] = entry
        self._num_edges += 1
        self._version += 1

    @staticmethod
    def _entry_for(
        key: tuple[NodeId, NodeId], source: NodeId, kind: EdgeKind
    ) -> tuple[EdgeKind, bool]:
        """Normalised kind-store entry for an edge added as source->?."""
        if not kind.directed:
            return (kind, True)
        return (kind, key[0] == source)

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        """Remove an undirected edge; raises :class:`EdgeError` if absent."""
        if u not in self._types or v not in self._types:
            raise NodeNotFoundError(u if u not in self._types else v)
        if v not in self._adj[u]:
            raise EdgeError(f"edge ({u!r}, {v!r}) is not in the graph")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._discard_typed(u, v)
        self._discard_typed(v, u)
        self._edge_kinds.pop(edge_key(u, v), None)
        self._num_edges -= 1
        self._version += 1

    def _discard_typed(self, node: NodeId, neighbor: NodeId) -> None:
        """Drop ``neighbor`` from ``node``'s typed adjacency, pruning the
        type bucket when it empties — an empty bucket would otherwise
        surface a phantom neighbour type to the matchers' ordering
        heuristics via :meth:`typed_adjacency`."""
        neighbor_type = self._types[neighbor]
        bucket = self._typed_adj[node][neighbor_type]
        bucket.discard(neighbor)
        if not bucket:
            del self._typed_adj[node][neighbor_type]

    def remove_node(self, node: NodeId) -> None:
        """Remove a node and all its incident edges."""
        if node not in self._types:
            raise NodeNotFoundError(node)
        for neighbor in list(self._adj[node]):
            self.remove_edge(node, neighbor)
        node_type = self._types.pop(node)
        del self._adj[node]
        del self._typed_adj[node]
        self._nodes_by_type[node_type].discard(node)
        if not self._nodes_by_type[node_type]:
            del self._nodes_by_type[node_type]
        self._version += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, node: NodeId) -> bool:
        return node in self._types

    def __len__(self) -> int:
        return len(self._types)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._types)

    @property
    def num_nodes(self) -> int:
        """Number of nodes |V|."""
        return len(self._types)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges |E|."""
        return self._num_edges

    def nodes(self) -> Iterator[NodeId]:
        """Iterate over all node ids."""
        return iter(self._types)

    def edges(self) -> Iterator[tuple[NodeId, NodeId]]:
        """Iterate over each undirected edge exactly once (canonical order)."""
        seen: set[tuple[NodeId, NodeId]] = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                key = edge_key(u, v)
                if key not in seen:
                    seen.add(key)
                    yield key

    def node_type(self, node: NodeId) -> str:
        """Return the type of ``node``."""
        try:
            return self._types[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """True iff an edge (of any kind) connects u and v."""
        return u in self._adj and v in self._adj[u]

    @property
    def has_kinds(self) -> bool:
        """True iff any edge carries a non-plain kind (O(1))."""
        return bool(self._edge_kinds)

    def edge_kind(self, u: NodeId, v: NodeId) -> EdgeKind:
        """The kind of the edge between u and v (:data:`PLAIN` default)."""
        if not self.has_edge(u, v):
            if u not in self._types or v not in self._types:
                raise NodeNotFoundError(u if u not in self._types else v)
            raise EdgeError(f"edge ({u!r}, {v!r}) is not in the graph")
        entry = self._edge_kinds.get(edge_key(u, v))
        return PLAIN if entry is None else entry[0]

    def edge_signature(self, u: NodeId, v: NodeId) -> EdgeSignature:
        """The edge's (label, rel) signature relative to argument order.

        ``rel`` is 0 for an undirected edge, 1 when the edge is directed
        ``u -> v`` and -1 when it is directed ``v -> u``.  Raises
        :class:`EdgeError` when no edge connects the two nodes.
        """
        if not self.has_edge(u, v):
            if u not in self._types or v not in self._types:
                raise NodeNotFoundError(u if u not in self._types else v)
            raise EdgeError(f"edge ({u!r}, {v!r}) is not in the graph")
        entry = self._edge_kinds.get(edge_key(u, v))
        if entry is None:
            return ("", 0)
        kind, forward = entry
        if not kind.directed:
            return (kind.label, 0)
        first_is_u = edge_key(u, v)[0] == u
        return (kind.label, 1 if forward == first_is_u else -1)

    def edges_with_kinds(self) -> Iterator[tuple[NodeId, NodeId, EdgeKind]]:
        """Iterate (source, target, kind) triples, one per edge.

        Directed edges are yielded source-first; undirected edges in
        canonical key order with their (possibly plain) kind.
        """
        for u, v in self.edges():
            entry = self._edge_kinds.get((u, v))
            if entry is None:
                yield (u, v, PLAIN)
            else:
                kind, forward = entry
                if kind.directed and not forward:
                    yield (v, u, kind)
                else:
                    yield (u, v, kind)

    def observed_edge_rules(self) -> frozenset[tuple[str, str, EdgeKind]]:
        """All (type, type, kind) rules realised by at least one edge.

        Directed kinds keep source-type-first orientation; undirected
        kinds use the sorted type pair.  The mining subsystem grows
        kinded patterns over these rules.
        """
        rules = set()
        for u, v, kind in self.edges_with_kinds():
            if kind.directed:
                rules.add((self.node_type(u), self.node_type(v), kind))
            else:
                tu, tv = self.node_type(u), self.node_type(v)
                rules.add((tu, tv, kind) if tu <= tv else (tv, tu, kind))
        return frozenset(rules)

    def neighbors(self, node: NodeId) -> frozenset[NodeId]:
        """All neighbours of ``node`` (as an immutable snapshot view)."""
        try:
            return frozenset(self._adj[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def neighbors_of_type(self, node: NodeId, node_type: str) -> frozenset[NodeId]:
        """Neighbours of ``node`` whose type equals ``node_type``."""
        try:
            typed = self._typed_adj[node]
        except KeyError:
            raise NodeNotFoundError(node) from None
        return frozenset(typed.get(node_type, ()))

    def degree(self, node: NodeId) -> int:
        """Number of neighbours of ``node``."""
        try:
            return len(self._adj[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def typed_degree(self, node: NodeId, node_type: str) -> int:
        """Number of neighbours of ``node`` with the given type."""
        try:
            typed = self._typed_adj[node]
        except KeyError:
            raise NodeNotFoundError(node) from None
        return len(typed.get(node_type, ()))

    def typed_adjacency(self, node: NodeId) -> dict[str, set[NodeId]]:
        """Internal typed adjacency of ``node`` — **read-only** access.

        Returns the live index (no copy) so that the matching engines can
        iterate neighbours by type without per-call allocation.  Callers
        must not mutate the returned mapping or its sets.
        """
        try:
            return self._typed_adj[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def adjacency(self, node: NodeId) -> set[NodeId]:
        """Internal neighbour set of ``node`` — **read-only** access."""
        try:
            return self._adj[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    @property
    def types(self) -> frozenset[str]:
        """The set of node types T present in the graph."""
        return frozenset(self._nodes_by_type)

    def nodes_of_type(self, node_type: str) -> frozenset[NodeId]:
        """All nodes whose type equals ``node_type`` (empty if unknown)."""
        return frozenset(self._nodes_by_type.get(node_type, ()))

    def count_type(self, node_type: str) -> int:
        """Number of nodes of the given type."""
        return len(self._nodes_by_type.get(node_type, ()))

    def edge_type_pair(self, u: NodeId, v: NodeId) -> tuple[str, str]:
        """Sorted (type_u, type_v) pair for an edge's endpoints."""
        tu, tv = self.node_type(u), self.node_type(v)
        return (tu, tv) if tu <= tv else (tv, tu)

    def observed_type_pairs(self) -> frozenset[tuple[str, str]]:
        """All sorted type pairs that occur on at least one edge.

        The mining subsystem uses this to restrict pattern growth to
        type pairs that can actually match.
        """
        pairs = {self.edge_type_pair(u, v) for u, v in self.edges()}
        return frozenset(pairs)

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def induced_subgraph(self, nodes: Iterable[NodeId]) -> "TypedGraph":
        """Return the subgraph induced on ``nodes`` (copies structure)."""
        node_list = list(nodes)
        sub = TypedGraph(name=f"{self.name}#induced")
        for node in node_list:
            sub.add_node(node, self.node_type(node))
        node_set = set(node_list)
        for node in node_list:
            for nbr in self._adj[node]:
                if nbr in node_set and not sub.has_edge(node, nbr):
                    key = edge_key(node, nbr)
                    entry = self._edge_kinds.get(key)
                    if entry is None:
                        sub.add_edge(node, nbr)
                    else:
                        kind, forward = entry
                        src, dst = key if forward else (key[1], key[0])
                        sub.add_edge(src, dst, kind)
        return sub

    def copy(self) -> "TypedGraph":
        """Deep structural copy (node ids are shared, structure is not)."""
        dup = TypedGraph(name=self.name)
        for node, node_type in self._types.items():
            dup.add_node(node, node_type)
        for u, v, kind in self.edges_with_kinds():
            dup.add_edge(u, v, kind)
        return dup

    def __getstate__(self) -> dict:
        # the cached CSR view (attached by repro.graph.csr.csr_view) is
        # derived state: shipping it alongside the graph would double the
        # pickle the parallel builder sends to every worker
        state = dict(self.__dict__)
        state.pop("_csr_view_cache", None)
        return state

    def __setstate__(self, state: dict) -> None:
        # graphs pickled before the edge-kind refactor lack the store
        state.setdefault("_edge_kinds", {})
        self.__dict__.update(state)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TypedGraph):
            return NotImplemented
        if self._types != other._types:
            return False
        if self._edge_kinds != other._edge_kinds:
            return False
        return {edge_key(u, v) for u, v in self.edges()} == {
            edge_key(u, v) for u, v in other.edges()
        }

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<TypedGraph{label}: {self.num_nodes} nodes, "
            f"{self.num_edges} edges, {len(self._nodes_by_type)} types>"
        )
