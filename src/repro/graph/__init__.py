"""Typed heterogeneous graph substrate (Sect. II-A of the paper)."""

from repro.graph.builder import GraphBuilder
from repro.graph.schema import EdgeRule, GraphSchema
from repro.graph.statistics import GraphStatistics, degree_histogram, graph_statistics
from repro.graph.typed_graph import (
    PLAIN,
    EdgeKind,
    EdgeSignature,
    NodeId,
    TypedGraph,
    edge_key,
)

__all__ = [
    "EdgeKind",
    "EdgeRule",
    "EdgeSignature",
    "GraphBuilder",
    "GraphSchema",
    "GraphStatistics",
    "NodeId",
    "PLAIN",
    "TypedGraph",
    "degree_histogram",
    "edge_key",
    "graph_statistics",
]
