"""Dataset statistics in the style of the paper's Table II.

:func:`graph_statistics` summarises a typed graph (node/edge/type counts,
per-type breakdown, degree distribution moments); Table II of the paper
additionally reports the number of mined metagraphs and labelled queries,
which :mod:`repro.experiments.table2` joins in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.typed_graph import TypedGraph


@dataclass(frozen=True)
class GraphStatistics:
    """Summary statistics of a typed graph."""

    name: str
    num_nodes: int
    num_edges: int
    num_types: int
    nodes_per_type: dict[str, int] = field(default_factory=dict)
    mean_degree: float = 0.0
    max_degree: int = 0
    median_degree: float = 0.0

    def as_row(self) -> dict[str, object]:
        """Flatten into a report row (Table II columns first)."""
        return {
            "dataset": self.name,
            "#Nodes": self.num_nodes,
            "#Edges": self.num_edges,
            "#Types": self.num_types,
            "mean degree": round(self.mean_degree, 2),
            "max degree": self.max_degree,
        }


def graph_statistics(graph: TypedGraph) -> GraphStatistics:
    """Compute :class:`GraphStatistics` for a graph."""
    degrees = np.array([graph.degree(node) for node in graph.nodes()], dtype=float)
    per_type = {t: graph.count_type(t) for t in sorted(graph.types)}
    if degrees.size == 0:
        return GraphStatistics(
            name=graph.name,
            num_nodes=0,
            num_edges=0,
            num_types=0,
        )
    return GraphStatistics(
        name=graph.name,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        num_types=len(per_type),
        nodes_per_type=per_type,
        mean_degree=float(degrees.mean()),
        max_degree=int(degrees.max()),
        median_degree=float(np.median(degrees)),
    )


def degree_histogram(graph: TypedGraph, node_type: str | None = None) -> dict[int, int]:
    """Histogram of node degrees, optionally restricted to one type."""
    nodes = graph.nodes_of_type(node_type) if node_type else list(graph.nodes())
    hist: dict[int, int] = {}
    for node in nodes:
        d = graph.degree(node)
        hist[d] = hist.get(d, 0) + 1
    return dict(sorted(hist.items()))
