"""Serialisation for typed graphs: JSON documents, TSV edge lists, networkx.

The on-disk JSON format::

    {
      "name": "toy",
      "nodes": [["Alice", "user"], ["College A", "school"]],
      "edges": [["Alice", "College A"]]
    }

Node ids are serialised as-is, so only JSON-representable ids round-trip
through :func:`to_json` / :func:`from_json`.  The TSV format stores one
``node<TAB>type`` line per node in a ``#nodes`` section and one
``u<TAB>v`` line per edge in a ``#edges`` section.

Edges with a non-plain :class:`~repro.graph.typed_graph.EdgeKind` are
serialised as ``[source, target, label, directed]`` four-entry lists
(``source<TAB>target<TAB>label<TAB>0|1`` lines in TSV); plain edges keep
the legacy two-entry form, so a graph without kinds serialises to
byte-identical output.
"""

from __future__ import annotations

import json
from pathlib import Path

import networkx as nx

from repro.exceptions import GraphError
from repro.graph.typed_graph import PLAIN, EdgeKind, TypedGraph


def _edge_entry(u: object, v: object, kind: EdgeKind) -> list:
    if kind == PLAIN:
        return [u, v]
    return [u, v, kind.label, 1 if kind.directed else 0]


def to_json(graph: TypedGraph) -> str:
    """Serialise a graph to a JSON string."""
    doc = {
        "name": graph.name,
        "nodes": sorted(
            ([node, graph.node_type(node)] for node in graph.nodes()),
            key=lambda pair: repr(pair[0]),
        ),
        "edges": sorted(
            (
                _edge_entry(u, v, kind)
                for u, v, kind in graph.edges_with_kinds()
            ),
            key=lambda pair: (repr(pair[0]), repr(pair[1])),
        ),
    }
    return json.dumps(doc, indent=2)


def from_json(text: str) -> TypedGraph:
    """Parse a graph from a JSON string produced by :func:`to_json`."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise GraphError(f"invalid graph JSON: {exc}") from exc
    for key in ("nodes", "edges"):
        if key not in doc:
            raise GraphError(f"graph JSON is missing the {key!r} field")
    graph = TypedGraph(name=doc.get("name", ""))
    for entry in doc["nodes"]:
        if not isinstance(entry, list) or len(entry) != 2:
            raise GraphError(f"malformed node entry: {entry!r}")
        node, node_type = entry
        node = tuple(node) if isinstance(node, list) else node
        graph.add_node(node, node_type)
    for entry in doc["edges"]:
        if not isinstance(entry, list) or len(entry) not in (2, 4):
            raise GraphError(f"malformed edge entry: {entry!r}")
        u, v = entry[0], entry[1]
        u = tuple(u) if isinstance(u, list) else u
        v = tuple(v) if isinstance(v, list) else v
        if len(entry) == 2:
            graph.add_edge(u, v)
        else:
            label, directed = entry[2], entry[3]
            if not isinstance(label, str) or directed not in (0, 1):
                raise GraphError(f"malformed edge kind entry: {entry!r}")
            graph.add_edge(u, v, EdgeKind(label, bool(directed)))
    return graph


def save_json(graph: TypedGraph, path: str | Path) -> None:
    """Write a graph to ``path`` as JSON."""
    Path(path).write_text(to_json(graph), encoding="utf-8")


def load_json(path: str | Path) -> TypedGraph:
    """Read a graph from a JSON file."""
    return from_json(Path(path).read_text(encoding="utf-8"))


def to_tsv(graph: TypedGraph) -> str:
    """Serialise a graph of string node ids to a two-section TSV."""
    lines = ["#nodes"]
    for node in sorted(graph.nodes(), key=repr):
        if not isinstance(node, str):
            raise GraphError("TSV serialisation requires string node ids")
        lines.append(f"{node}\t{graph.node_type(node)}")
    lines.append("#edges")
    for u, v, kind in sorted(
        graph.edges_with_kinds(), key=lambda e: (repr(e[0]), repr(e[1]))
    ):
        if kind == PLAIN:
            lines.append(f"{u}\t{v}")
        else:
            lines.append(f"{u}\t{v}\t{kind.label}\t{int(kind.directed)}")
    return "\n".join(lines) + "\n"


def from_tsv(text: str) -> TypedGraph:
    """Parse a graph from the TSV format of :func:`to_tsv`."""
    graph = TypedGraph()
    section = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line in ("#nodes", "#edges"):
            section = line
            continue
        parts = line.split("\t")
        if len(parts) != 2 and not (section == "#edges" and len(parts) == 4):
            raise GraphError(f"TSV line {lineno} is malformed: {raw!r}")
        if section == "#nodes":
            graph.add_node(parts[0], parts[1])
        elif section == "#edges":
            if len(parts) == 2:
                graph.add_edge(parts[0], parts[1])
            else:
                if parts[3] not in ("0", "1"):
                    raise GraphError(
                        f"TSV line {lineno} has a malformed kind: {raw!r}"
                    )
                kind = EdgeKind(parts[2], parts[3] == "1")
                graph.add_edge(parts[0], parts[1], kind)
        else:
            raise GraphError(f"TSV line {lineno} appears before any section header")
    return graph


def to_networkx(graph: TypedGraph) -> nx.Graph:
    """Convert to a :class:`networkx.Graph` with a ``type`` node attribute."""
    nxg = nx.Graph(name=graph.name)
    for node in graph.nodes():
        nxg.add_node(node, type=graph.node_type(node))
    if graph.has_kinds:
        for u, v, kind in graph.edges_with_kinds():
            if kind == PLAIN:
                nxg.add_edge(u, v)
            elif kind.directed:
                # nx.Graph edge attrs are orientation-blind; record the
                # source explicitly so round-trips keep the direction
                nxg.add_edge(u, v, label=kind.label, directed=True, source=u)
            else:
                nxg.add_edge(u, v, label=kind.label, directed=False)
    else:
        nxg.add_edges_from(graph.edges())
    return nxg


def from_networkx(nxg: nx.Graph) -> TypedGraph:
    """Convert from a networkx graph whose nodes carry a ``type`` attribute."""
    graph = TypedGraph(name=nxg.name if isinstance(nxg.name, str) else "")
    for node, data in nxg.nodes(data=True):
        if "type" not in data:
            raise GraphError(f"networkx node {node!r} lacks a 'type' attribute")
        graph.add_node(node, data["type"])
    for u, v, data in nxg.edges(data=True):
        if u == v:
            continue  # typed graphs are simple; drop self-loops silently
        if "label" in data or "directed" in data:
            kind = EdgeKind(data.get("label", ""), bool(data.get("directed")))
            if kind.directed and data.get("source") == v:
                u, v = v, u
            graph.add_edge(u, v, kind)
        else:
            graph.add_edge(u, v)
    return graph
