"""Personalized PageRank: the random-walk substrate for SRW.

The walk restarts at the query node with probability ``alpha`` and
otherwise follows edges with probabilities proportional to per-edge
*strengths* (uniform strengths give classic PPR [1]):

    p = alpha * e_q + (1 - alpha) * Q^T p

where ``Q`` is the row-stochastic transition matrix.  Solved by power
iteration on scipy sparse matrices.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np
import scipy.sparse as sp

from repro.graph.typed_graph import NodeId, TypedGraph

StrengthFn = Callable[[NodeId, NodeId], float]


class NodeIndexer:
    """Stable node <-> dense-index mapping for one graph."""

    def __init__(self, graph: TypedGraph):
        self.nodes: list[NodeId] = sorted(graph.nodes(), key=repr)
        self.index: dict[NodeId, int] = {n: i for i, n in enumerate(self.nodes)}

    def __len__(self) -> int:
        return len(self.nodes)


def transition_matrix(
    graph: TypedGraph,
    indexer: NodeIndexer,
    strength: StrengthFn | None = None,
) -> sp.csr_matrix:
    """Row-stochastic transition matrix over the graph's edges.

    Dangling nodes (degree 0) get an all-zero row; the walk mass they
    would lose is reinjected at the restart node by the iteration.
    """
    n = len(indexer)
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    for u, v in graph.edges():
        w = 1.0 if strength is None else float(strength(u, v))
        iu, iv = indexer.index[u], indexer.index[v]
        rows.extend((iu, iv))
        cols.extend((iv, iu))
        vals.extend((w, w))
    matrix = sp.csr_matrix((vals, (rows, cols)), shape=(n, n))
    row_sums = np.asarray(matrix.sum(axis=1)).ravel()
    inv = np.zeros_like(row_sums)
    nonzero = row_sums > 0
    inv[nonzero] = 1.0 / row_sums[nonzero]
    return sp.diags(inv) @ matrix


def personalized_pagerank(
    q_matrix: sp.csr_matrix,
    restart_index: int,
    alpha: float = 0.15,
    max_iterations: int = 60,
    tolerance: float = 1e-10,
) -> np.ndarray:
    """Stationary restart-walk distribution from one node."""
    n = q_matrix.shape[0]
    restart = np.zeros(n)
    restart[restart_index] = 1.0
    p = restart.copy()
    qt = q_matrix.T.tocsr()
    for _ in range(max_iterations):
        nxt = alpha * restart + (1 - alpha) * (qt @ p)
        # reinject mass lost at dangling rows
        nxt += (1 - nxt.sum()) * restart
        if np.abs(nxt - p).sum() < tolerance:
            p = nxt
            break
        p = nxt
    return p


def ppr_ranker(
    graph: TypedGraph,
    universe: Sequence[NodeId],
    alpha: float = 0.15,
) -> Callable[[NodeId], list[NodeId]]:
    """A plain-PPR ranker over the universe (unsupervised reference)."""
    indexer = NodeIndexer(graph)
    q_matrix = transition_matrix(graph, indexer)
    allowed = set(universe)

    def rank(query: NodeId) -> list[NodeId]:
        p = personalized_pagerank(q_matrix, indexer.index[query], alpha=alpha)
        scored = [
            (node, p[indexer.index[node]])
            for node in universe
            if node != query and node in allowed
        ]
        scored.sort(key=lambda pair: (-pair[1], repr(pair[0])))
        return [node for node, _score in scored]

    return rank
