"""SRW: supervised random walks (Backstrom & Leskovec [5]).

The paper's strongest non-metagraph baseline.  Each edge gets a feature
vector derived from its endpoint types (one-hot over observed type
pairs, exactly "we used the types of its nodes to generate its
features"); the edge strength is ``exp(theta . f)``, the transition
matrix is the strength-weighted row-normalised adjacency, and the
restart-walk scores ``p_q`` rank nodes.  ``theta`` is learned from the
same pairwise triplets as MGP by maximising

    sum log sigmoid(mu * (p_q[x] - p_q[y]))

with the iterative derivative scheme of [5]: the power iteration for
``p`` is differentiated through, giving a recursion for ``dp/dtheta``.

Because features are one-hot per type pair, the strength of an edge
depends only on its type pair and ``dQ/dtheta_k`` has the closed form

    dQ_uv/dtheta_k = Q_uv * (1[pair(uv)=k] - S_k[u]),
    S_k[u] = sum_w Q_uw * 1[pair(uw)=k].
"""

from __future__ import annotations

import random
from collections.abc import Sequence

import numpy as np
import scipy.sparse as sp

from repro.baselines.pagerank import NodeIndexer
from repro.exceptions import TrainingDataError
from repro.graph.typed_graph import NodeId, TypedGraph
from repro.learning.objective import Triplet


class SRWModel:
    """Supervised-random-walk proximity model for one semantic class."""

    def __init__(
        self,
        graph: TypedGraph,
        alpha: float = 0.15,
        mu: float = 5.0,
        learning_rate: float = 1.0,
        epochs: int = 40,
        power_iterations: int = 40,
        seed: int = 0,
    ):
        self.graph = graph
        self.alpha = alpha
        self.mu = mu
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.power_iterations = power_iterations
        self.seed = seed
        self.indexer = NodeIndexer(graph)
        pairs = sorted(graph.observed_type_pairs())
        self.feature_of_pair = {pair: k for k, pair in enumerate(pairs)}
        self.num_features = len(pairs)
        self.theta = np.zeros(self.num_features)
        self._edge_pairs = self._edge_pair_matrix()
        self._transition_cache: tuple[bytes, tuple] | None = None

    # ------------------------------------------------------------------
    # transition machinery
    # ------------------------------------------------------------------
    def _edge_pair_matrix(self) -> sp.csr_matrix:
        """Sparse matrix of (feature-id + 1) per directed edge slot."""
        n = len(self.indexer)
        rows, cols, vals = [], [], []
        for u, v in self.graph.edges():
            k = self.feature_of_pair[self.graph.edge_type_pair(u, v)]
            iu, iv = self.indexer.index[u], self.indexer.index[v]
            rows.extend((iu, iv))
            cols.extend((iv, iu))
            vals.extend((k + 1, k + 1))  # +1 so zero means "no edge"
        return sp.csr_matrix((vals, (rows, cols)), shape=(n, n))

    def _transition(self, theta: np.ndarray) -> tuple[sp.csr_matrix, list[sp.csr_matrix], np.ndarray]:
        """Q, per-feature masked Q_k, and the row-sum features S (n x d).

        Q, the masks and the pair matrix share one CSR structure
        (indices/indptr), so per-entry feature lookups stay aligned —
        Q's data is computed by scaling the strength data in place
        rather than by a sparse matmul (which may reorder indices).
        """
        pair_csr = self._edge_pairs
        pair_ids = pair_csr.data.astype(int) - 1
        strengths = np.exp(theta[pair_ids])
        n = pair_csr.shape[0]
        row_counts = np.diff(pair_csr.indptr)
        row_of_entry = np.repeat(np.arange(n), row_counts)
        row_sums = np.bincount(row_of_entry, weights=strengths, minlength=n)
        inv = np.zeros(n)
        nz = row_sums > 0
        inv[nz] = 1.0 / row_sums[nz]
        q_data = strengths * inv[row_of_entry]
        q_matrix = sp.csr_matrix(
            (q_data, pair_csr.indices, pair_csr.indptr), shape=pair_csr.shape
        )
        masks: list[sp.csr_matrix] = []
        s_features = np.zeros((n, self.num_features))
        for k in range(self.num_features):
            data = np.where(pair_ids == k, q_data, 0.0)
            mask = sp.csr_matrix(
                (data, pair_csr.indices, pair_csr.indptr), shape=pair_csr.shape
            )
            masks.append(mask)
            s_features[:, k] = np.asarray(mask.sum(axis=1)).ravel()
        return q_matrix, masks, s_features

    def _walk(self, q_matrix: sp.csr_matrix, restart_index: int) -> np.ndarray:
        n = q_matrix.shape[0]
        restart = np.zeros(n)
        restart[restart_index] = 1.0
        p = restart.copy()
        qt = q_matrix.T.tocsr()
        for _ in range(self.power_iterations):
            nxt = self.alpha * restart + (1 - self.alpha) * (qt @ p)
            nxt += (1 - nxt.sum()) * restart
            if np.abs(nxt - p).sum() < 1e-12:
                p = nxt
                break
            p = nxt
        return p

    def _walk_with_gradient(
        self,
        q_matrix: sp.csr_matrix,
        masks: list[sp.csr_matrix],
        s_features: np.ndarray,
        restart_index: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """p and dp/dtheta (n x d) for one restart node."""
        n = q_matrix.shape[0]
        d = self.num_features
        restart = np.zeros(n)
        restart[restart_index] = 1.0
        p = restart.copy()
        dp = np.zeros((n, d))
        qt = q_matrix.T.tocsr()
        masks_t = [m.T.tocsr() for m in masks]
        for _ in range(self.power_iterations):
            new_p = self.alpha * restart + (1 - self.alpha) * (qt @ p)
            new_p += (1 - new_p.sum()) * restart
            new_dp = np.empty_like(dp)
            weighted = p[:, None] * s_features  # n x d
            qt_dp = qt @ dp  # n x d
            qt_weighted = qt @ weighted  # n x d
            for k in range(d):
                term_plus = masks_t[k] @ p
                new_dp[:, k] = (1 - self.alpha) * (
                    qt_dp[:, k] + term_plus - qt_weighted[:, k]
                )
            p, dp = new_p, new_dp
        return p, dp

    # ------------------------------------------------------------------
    # learning
    # ------------------------------------------------------------------
    def fit(self, triplets: Sequence[Triplet]) -> "SRWModel":
        """Learn theta from pairwise triplets; returns self."""
        if not triplets:
            raise TrainingDataError("SRW received no training triplets")
        by_query: dict[NodeId, list[tuple[int, int]]] = {}
        for q, x, y in triplets:
            by_query.setdefault(q, []).append(
                (self.indexer.index[x], self.indexer.index[y])
            )
        rng = random.Random(self.seed)
        theta = np.array([rng.uniform(-0.1, 0.1) for _ in range(self.num_features)])
        lr = self.learning_rate
        best_theta, best_obj = theta.copy(), -np.inf
        for _epoch in range(self.epochs):
            q_matrix, masks, s_features = self._transition(theta)
            grad = np.zeros_like(theta)
            objective = 0.0
            for q, pairs in by_query.items():
                p, dp = self._walk_with_gradient(
                    q_matrix, masks, s_features, self.indexer.index[q]
                )
                for ix, iy in pairs:
                    z = self.mu * (p[ix] - p[iy])
                    prob = 1.0 / (1.0 + np.exp(-z)) if z >= 0 else (
                        np.exp(z) / (1.0 + np.exp(z))
                    )
                    objective += float(np.log(max(prob, 1e-300)))
                    grad += self.mu * (1.0 - prob) * (dp[ix] - dp[iy])
            if objective > best_obj:
                best_obj, best_theta = objective, theta.copy()
            theta = theta + lr * grad
            theta = np.clip(theta, -8.0, 8.0)  # keep exp() well-conditioned
        self.theta = best_theta
        return self

    # ------------------------------------------------------------------
    # online phase
    # ------------------------------------------------------------------
    def rank(
        self, query: NodeId, universe: Sequence[NodeId], k: int | None = None
    ) -> list[tuple[NodeId, float]]:
        """Universe nodes in descending walk score from ``query``."""
        key = self.theta.tobytes()
        if self._transition_cache is not None and self._transition_cache[0] == key:
            q_matrix = self._transition_cache[1][0]
        else:
            transition = self._transition(self.theta)
            self._transition_cache = (key, transition)
            q_matrix = transition[0]
        p = self._walk(q_matrix, self.indexer.index[query])
        scored = [
            (node, float(p[self.indexer.index[node]]))
            for node in universe
            if node != query
        ]
        scored.sort(key=lambda pair: (-pair[1], repr(pair[0])))
        return scored[:k] if k is not None else scored
