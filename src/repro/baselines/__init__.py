"""Comparison algorithms (Sect. V-B): MPP, MGP-U, MGP-B, SRW, PPR, SimRank."""

from repro.baselines.mgp_variants import mgp_uniform, train_mgp_best, train_mpp
from repro.baselines.pathsim import pathsim_model, select_pathsim
from repro.baselines.pagerank import (
    NodeIndexer,
    personalized_pagerank,
    ppr_ranker,
    transition_matrix,
)
from repro.baselines.simrank import SimRank
from repro.baselines.srw import SRWModel

__all__ = [
    "NodeIndexer",
    "SRWModel",
    "SimRank",
    "mgp_uniform",
    "pathsim_model",
    "personalized_pagerank",
    "ppr_ranker",
    "select_pathsim",
    "train_mgp_best",
    "train_mpp",
    "transition_matrix",
]
