"""SimRank [2]: structural-context similarity, a related-work reference.

Included for completeness of the proximity-search landscape the paper
surveys (it measures only a "generic" proximity and cannot target a
semantic class).  Matrix form:

    S <- max(C * W^T S W, I)

with ``W`` the column-normalised adjacency and decay ``C``.  The score
matrix ``S`` is inherently dense n^2 state, but ``W`` is as sparse as
the graph — the iteration multiplies through ``scipy.sparse`` CSR when
scipy is available (O(nnz * n) per iteration instead of O(n^3)), which
is what lets the sparse path's ``max_nodes`` guard sit at 10k nodes;
the dense fallback keeps the original 4k ceiling.  ``use_sparse=False``
(or a missing scipy) selects the dense reference path; both produce the
same scores up to floating-point associativity, which the parity test
in ``tests/baselines`` pins.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

try:  # scipy is optional: the dense path needs only numpy
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - exercised only without scipy
    _sparse = None

from repro.baselines.pagerank import NodeIndexer
from repro.exceptions import ReproError
from repro.graph.typed_graph import NodeId, TypedGraph


class SimRank:
    """SimRank scores over a typed graph.

    Parameters
    ----------
    use_sparse:
        ``None`` (default) multiplies through scipy sparse matrices when
        scipy is importable and falls back to dense numpy otherwise;
        ``True`` requires scipy; ``False`` forces the dense reference
        path (used by the parity test).
    max_nodes:
        Size guard; ``None`` (default) resolves per path — 10k for the
        sparse iteration, 4k for the dense O(n^3) fallback, which the
        raised ceiling was never meant to admit.
    """

    DENSE_MAX_NODES = 4_000
    SPARSE_MAX_NODES = 10_000

    def __init__(
        self,
        graph: TypedGraph,
        decay: float = 0.8,
        iterations: int = 5,
        max_nodes: int | None = None,
        use_sparse: bool | None = None,
    ):
        if use_sparse and _sparse is None:
            raise ReproError("use_sparse=True requires scipy, which is not installed")
        self._sparse = _sparse is not None if use_sparse is None else use_sparse
        if max_nodes is None:
            max_nodes = self.SPARSE_MAX_NODES if self._sparse else self.DENSE_MAX_NODES
        if graph.num_nodes > max_nodes:
            raise ReproError(
                f"SimRank keeps a dense O(n^2) score matrix; graph has "
                f"{graph.num_nodes} nodes (max {max_nodes} on the "
                f"{'sparse' if self._sparse else 'dense'} path)"
            )
        self.graph = graph
        self.decay = decay
        self.iterations = iterations
        self.indexer = NodeIndexer(graph)
        self._scores = self._compute()

    def _edge_indexes(self) -> tuple[list[int], list[int]]:
        rows: list[int] = []
        cols: list[int] = []
        for u, v in self.graph.edges():
            iu, iv = self.indexer.index[u], self.indexer.index[v]
            rows += (iu, iv)
            cols += (iv, iu)
        return rows, cols

    def _dense_adjacency(self) -> np.ndarray:
        n = len(self.indexer)
        adjacency = np.zeros((n, n))
        rows, cols = self._edge_indexes()
        adjacency[rows, cols] = 1.0
        col_sums = adjacency.sum(axis=0)
        col_sums[col_sums == 0] = 1.0
        return adjacency / col_sums  # column-normalised

    def _sparse_adjacency(self):
        # built straight from the edge list: the dense n^2 adjacency is
        # never materialised, only the n^2 score matrix is
        n = len(self.indexer)
        rows, cols = self._edge_indexes()
        adjacency = _sparse.csr_array(
            (np.ones(len(rows)), (rows, cols)), shape=(n, n)
        )
        col_sums = np.asarray(adjacency.sum(axis=0)).ravel()
        col_sums[col_sums == 0] = 1.0
        scale = _sparse.dia_array(
            (np.atleast_2d(1.0 / col_sums), [0]), shape=(n, n)
        )
        return (adjacency @ scale).tocsr()

    def _compute(self) -> np.ndarray:
        n = len(self.indexer)
        w = self._sparse_adjacency() if self._sparse else self._dense_adjacency()
        scores = np.eye(n)
        for _ in range(self.iterations):
            if self._sparse:
                # W^T (S W): two sparse-times-dense products, O(nnz * n)
                scores = self.decay * (w.T @ (scores @ w))
            else:
                scores = self.decay * (w.T @ scores @ w)
            np.fill_diagonal(scores, 1.0)
        return scores

    def similarity(self, x: NodeId, y: NodeId) -> float:
        """SimRank score s(x, y)."""
        return float(
            self._scores[self.indexer.index[x], self.indexer.index[y]]
        )

    def rank(
        self, query: NodeId, universe: Sequence[NodeId], k: int | None = None
    ) -> list[tuple[NodeId, float]]:
        """Universe nodes in descending SimRank similarity to ``query``."""
        scored = [
            (node, self.similarity(query, node))
            for node in universe
            if node != query
        ]
        scored.sort(key=lambda pair: (-pair[1], repr(pair[0])))
        return scored[:k] if k is not None else scored
