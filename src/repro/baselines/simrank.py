"""SimRank [2]: structural-context similarity, a related-work reference.

Included for completeness of the proximity-search landscape the paper
surveys (it measures only a "generic" proximity and cannot target a
semantic class).  Matrix form on dense numpy arrays:

    S <- max(C * W^T S W, I)

with ``W`` the column-normalised adjacency and decay ``C``.  Dense n^2
state bounds usable graph sizes; a guard refuses graphs above
``max_nodes``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.baselines.pagerank import NodeIndexer
from repro.exceptions import ReproError
from repro.graph.typed_graph import NodeId, TypedGraph


class SimRank:
    """SimRank scores over a (small) typed graph."""

    def __init__(
        self,
        graph: TypedGraph,
        decay: float = 0.8,
        iterations: int = 5,
        max_nodes: int = 4000,
    ):
        if graph.num_nodes > max_nodes:
            raise ReproError(
                f"SimRank is dense O(n^2); graph has {graph.num_nodes} nodes "
                f"(max {max_nodes})"
            )
        self.graph = graph
        self.decay = decay
        self.iterations = iterations
        self.indexer = NodeIndexer(graph)
        self._scores = self._compute()

    def _compute(self) -> np.ndarray:
        n = len(self.indexer)
        adjacency = np.zeros((n, n))
        for u, v in self.graph.edges():
            iu, iv = self.indexer.index[u], self.indexer.index[v]
            adjacency[iu, iv] = adjacency[iv, iu] = 1.0
        col_sums = adjacency.sum(axis=0)
        col_sums[col_sums == 0] = 1.0
        w = adjacency / col_sums  # column-normalised
        scores = np.eye(n)
        identity = np.eye(n)
        for _ in range(self.iterations):
            scores = self.decay * (w.T @ scores @ w)
            np.fill_diagonal(scores, 1.0)
            scores = np.maximum(scores, identity * 0.0)
        return scores

    def similarity(self, x: NodeId, y: NodeId) -> float:
        """SimRank score s(x, y)."""
        return float(
            self._scores[self.indexer.index[x], self.indexer.index[y]]
        )

    def rank(
        self, query: NodeId, universe: Sequence[NodeId], k: int | None = None
    ) -> list[tuple[NodeId, float]]:
        """Universe nodes in descending SimRank similarity to ``query``."""
        scored = [
            (node, self.similarity(query, node))
            for node in universe
            if node != query
        ]
        scored.sort(key=lambda pair: (-pair[1], repr(pair[0])))
        return scored[:k] if k is not None else scored
