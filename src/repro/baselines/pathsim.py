"""PathSim [4]: metapath-based top-k similarity (related-work reference).

PathSim measures, for a chosen symmetric metapath P,

    s(x, y) = 2 * |paths P from x to y| / (|x ~ x| + |y ~ y|)

The original relies on a *manually selected* metapath — exactly the
limitation Sect. VI argues against.  In the MGP formulation, PathSim
along P is MGP with a one-hot weight on P's catalog id (the counting
differs — path instances vs metagraph instances — but the normalised
co-occurrence structure is the same), so we implement it as a one-hot
model over the metapath ids, either user-chosen or selected on training
data like MGP-B.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.eval.harness import evaluate_ranker, model_ranker
from repro.exceptions import LearningError
from repro.graph.typed_graph import NodeId
from repro.index.vectors import MetagraphVectors
from repro.learning.examples import LabelMap
from repro.learning.model import ProximityModel, single_metagraph_model
from repro.metagraph.catalog import MetagraphCatalog
from repro.metagraph.metagraph import Metagraph


def pathsim_model(
    catalog: MetagraphCatalog,
    vectors: MetagraphVectors,
    metapath: Metagraph,
) -> ProximityModel:
    """PathSim along one manually chosen metapath."""
    if not metapath.is_path:
        raise LearningError(f"{metapath!r} is not a metapath")
    mg_id = catalog.id_of(metapath)
    model = single_metagraph_model(vectors, mg_id, name="PathSim")
    return model


def select_pathsim(
    catalog: MetagraphCatalog,
    vectors: MetagraphVectors,
    train_queries: Sequence[NodeId],
    labels: LabelMap,
    universe: Sequence[NodeId],
    k: int = 10,
) -> ProximityModel:
    """PathSim with the best metapath chosen on training data.

    The automated stand-in for the original's manual selection: every
    matched metapath is tried as a one-hot model and the best training
    NDCG@k wins.
    """
    candidates = [
        mg_id for mg_id in catalog.metapath_ids() if mg_id in vectors.matched_ids
    ]
    if not candidates:
        raise LearningError("no matched metapaths to select from")
    best_id, best_score = candidates[0], -1.0
    for mg_id in candidates:
        model = single_metagraph_model(vectors, mg_id)
        result = evaluate_ranker(
            model_ranker(model, universe), train_queries, labels, k=k
        )
        if result.ndcg > best_score:
            best_id, best_score = mg_id, result.ndcg
    return single_metagraph_model(vectors, best_id, name="PathSim")
