"""The MGP-derived comparison algorithms of Sect. V-B.

- **MPP**: metapath-based proximity — the MGP machinery restricted to
  the metapath subset of the catalog (adapting PathSim's metapaths [4]
  to the supervised approach);
- **MGP-U**: uniform weights over all metagraphs (no learning);
- **MGP-B**: the single best metagraph on the *training* data.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.eval.harness import evaluate_ranker, model_ranker
from repro.exceptions import LearningError
from repro.graph.typed_graph import NodeId
from repro.index.vectors import MetagraphVectors
from repro.learning.examples import LabelMap
from repro.learning.model import (
    ProximityModel,
    single_metagraph_model,
    uniform_model,
)
from repro.learning.objective import Triplet
from repro.learning.trainer import Trainer
from repro.metagraph.catalog import MetagraphCatalog


def train_mpp(
    catalog: MetagraphCatalog,
    vectors: MetagraphVectors,
    triplets: Sequence[Triplet],
    trainer: Trainer | None = None,
) -> ProximityModel:
    """MPP: supervised training restricted to metapaths."""
    trainer = trainer or Trainer()
    seed_ids = catalog.metapath_ids()
    if not seed_ids:
        raise LearningError("catalog contains no metapaths for MPP")
    weights = trainer.train(triplets, vectors, active_ids=seed_ids)
    return ProximityModel(weights, vectors, name="MPP")


def mgp_uniform(vectors: MetagraphVectors) -> ProximityModel:
    """MGP-U: uniform weighting, independent of the training data."""
    return uniform_model(vectors, name="MGP-U")


def train_mgp_best(
    vectors: MetagraphVectors,
    train_queries: Sequence[NodeId],
    labels: LabelMap,
    universe: Sequence[NodeId],
    k: int = 10,
) -> ProximityModel:
    """MGP-B: pick the single best-performing metagraph on training data.

    Every matched metagraph is evaluated as a one-hot model by NDCG@k on
    the training queries; the argmax (ties to the smaller id) wins.
    """
    matched = sorted(vectors.matched_ids)
    if not matched:
        raise LearningError("vector store is empty; nothing to select from")
    best_id, best_score = matched[0], -1.0
    for mg_id in matched:
        model = single_metagraph_model(vectors, mg_id)
        result = evaluate_ranker(
            model_ranker(model, universe), train_queries, labels, k=k
        )
        if result.ndcg > best_score:
            best_id, best_score = mg_id, result.ndcg
    return single_metagraph_model(vectors, best_id, name="MGP-B")
