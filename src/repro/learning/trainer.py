"""Projected gradient ascent for MGP weights (Sect. III-B, Eq. 6).

The paper's settings, reproduced as defaults: sigmoid scale mu = 5,
initial learning rate gamma = 10 decayed by 5% every 100 iterations,
convergence when the log-likelihood changes by less than 0.001%
(relative), and 5 random restarts with the best final likelihood kept.

Weights are constrained to [0, 1] after every step — by Theorem 1's
scale-invariance only weight *ratios* matter, so the box constraint
costs nothing and makes weights interpretable (Sect. III-B, final
remark; Fig. 4 plots weights on a [0, 1] axis).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import TrainingDataError
from repro.index.vectors import MetagraphVectors
from repro.learning.objective import (
    Triplet,
    TripletMatrices,
    log_likelihood,
    log_likelihood_gradient,
)


@dataclass(frozen=True)
class TrainerConfig:
    """Hyper-parameters of gradient ascent (paper defaults)."""

    mu: float = 5.0
    learning_rate: float = 10.0
    decay: float = 0.95
    decay_every: int = 100
    rel_tolerance: float = 1e-5  # 0.001% relative change
    max_iterations: int = 1500
    restarts: int = 5
    seed: int = 0


@dataclass
class TrainingRun:
    """Diagnostics of one trained model."""

    log_likelihood: float
    iterations: int
    restarts_run: int
    converged: bool
    history: list[float] = field(default_factory=list)


class Trainer:
    """Trains a full-length weight vector over a set of active ids."""

    def __init__(self, config: TrainerConfig | None = None):
        self.config = config or TrainerConfig()
        self.last_run: TrainingRun | None = None

    def train(
        self,
        triplets: Sequence[Triplet],
        vectors: MetagraphVectors,
        active_ids: Sequence[int] | None = None,
    ) -> np.ndarray:
        """Learn weights from triplets; returns a full-length vector.

        ``active_ids`` restricts learning to a subset of metagraph ids
        (dual-stage training); inactive ids get weight 0.  Defaults to
        the ids whose counts are present in the vector store.
        """
        if active_ids is None:
            active_ids = sorted(vectors.matched_ids)
        if not active_ids:
            raise TrainingDataError(
                "no active metagraph ids (vector store is empty)"
            )
        matrices = TripletMatrices(triplets, vectors, active_ids)
        w_active, run = self._ascend(matrices)
        self.last_run = run
        return matrices.expand(w_active, vectors.catalog_size)

    # ------------------------------------------------------------------
    def _ascend(self, matrices: TripletMatrices) -> tuple[np.ndarray, TrainingRun]:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        best_w: np.ndarray | None = None
        best_run: TrainingRun | None = None
        for _restart in range(max(1, cfg.restarts)):
            w = rng.uniform(0.05, 1.0, size=matrices.dim)
            run = self._single_ascent(matrices, w)
            if best_run is None or run[1].log_likelihood > best_run.log_likelihood:
                best_w, best_run = run
        assert best_w is not None and best_run is not None
        best_run.restarts_run = max(1, cfg.restarts)
        return best_w, best_run

    def _single_ascent(
        self, matrices: TripletMatrices, w: np.ndarray
    ) -> tuple[np.ndarray, TrainingRun]:
        cfg = self.config
        lr = cfg.learning_rate
        previous = log_likelihood(matrices, w, cfg.mu)
        history = [previous]
        converged = False
        iteration = 0
        for iteration in range(1, cfg.max_iterations + 1):
            grad = log_likelihood_gradient(matrices, w, cfg.mu)
            candidate = np.clip(w + lr * grad, 0.0, 1.0)
            current = log_likelihood(matrices, candidate, cfg.mu)
            if current < previous:
                # overshoot: shrink the step and retry from the same point
                lr *= 0.5
                if lr < 1e-8:
                    converged = True
                    break
                continue
            w = candidate
            history.append(current)
            denom = max(abs(previous), 1e-12)
            if abs(current - previous) / denom < cfg.rel_tolerance:
                previous = current
                converged = True
                break
            previous = current
            if iteration % cfg.decay_every == 0:
                lr *= cfg.decay
        run = TrainingRun(
            log_likelihood=previous,
            iterations=iteration,
            restarts_run=1,
            converged=converged,
            history=history,
        )
        return w, run
