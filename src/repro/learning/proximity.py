"""MGP: the metagraph-based proximity family (Def. 3) and its gradient.

    pi(x, y; w) = 2 * (m_xy . w) / (m_x . w + m_y . w)

with non-negative weights ``w``.  Because every instance counted by
``m_xy[i]`` (x at a symmetric position together with y) is also counted
by ``m_x[i]`` and ``m_y[i]``, the numerator never exceeds the
denominator and ``pi`` lies in [0, 1].  When the denominator is zero the
numerator is zero too and ``pi`` is defined as 0 (no shared structure,
no evidence); ``pi(x, x)`` is 1 by convention (self-maximum).

The partial derivative used by supervised learning (Sect. III-B):

    d pi(v,u) / d w[i] =
        (2 * (m_v.w + m_u.w) * m_vu[i] - 2 * (m_vu.w) * (m_v[i] + m_u[i]))
        / (m_v.w + m_u.w)^2
"""

from __future__ import annotations

import numpy as np

from repro.graph.typed_graph import NodeId
from repro.index.vectors import MetagraphVectors


def mgp_from_vectors(
    m_xy: np.ndarray, m_x: np.ndarray, m_y: np.ndarray, w: np.ndarray
) -> float:
    """pi(x, y; w) from raw vectors."""
    denominator = float(m_x @ w + m_y @ w)
    if denominator <= 0.0:
        return 0.0
    return 2.0 * float(m_xy @ w) / denominator


def mgp_gradient_from_vectors(
    m_xy: np.ndarray, m_x: np.ndarray, m_y: np.ndarray, w: np.ndarray
) -> np.ndarray:
    """d pi(x,y;w) / d w as a vector (zero where the denominator is zero)."""
    denominator = float(m_x @ w + m_y @ w)
    if denominator <= 0.0:
        return np.zeros_like(w)
    numerator = float(m_xy @ w)
    return (2.0 * denominator * m_xy - 2.0 * numerator * (m_x + m_y)) / (
        denominator * denominator
    )


def mgp(
    vectors: MetagraphVectors, x: NodeId, y: NodeId, w: np.ndarray
) -> float:
    """pi(x, y; w) against a vector store; pi(x, x) = 1."""
    if x == y:
        return 1.0
    return mgp_from_vectors(
        vectors.pair_vector(x, y),
        vectors.node_vector(x),
        vectors.node_vector(y),
        w,
    )


def batch_mgp(
    m_xy: np.ndarray, m_x: np.ndarray, m_y: np.ndarray, w: np.ndarray
) -> np.ndarray:
    """Vectorised pi over stacked rows (n x d matrices)."""
    numerator = m_xy @ w
    denominator = m_x @ w + m_y @ w
    out = np.zeros(len(numerator))
    mask = denominator > 0.0
    out[mask] = 2.0 * numerator[mask] / denominator[mask]
    return out


def batch_mgp_gradient(
    m_xy: np.ndarray, m_x: np.ndarray, m_y: np.ndarray, w: np.ndarray
) -> np.ndarray:
    """Vectorised d pi / d w over stacked rows; returns an n x d matrix."""
    numerator = m_xy @ w
    denominator = m_x @ w + m_y @ w
    grad = np.zeros_like(m_xy)
    mask = denominator > 0.0
    if np.any(mask):
        d = denominator[mask][:, None]
        a = numerator[mask][:, None]
        grad[mask] = (2.0 * d * m_xy[mask] - 2.0 * a * (m_x[mask] + m_y[mask])) / (
            d * d
        )
    return grad
