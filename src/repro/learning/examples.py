"""Training-example generation: pairwise ranking triplets Omega.

Sect. V-A "Training and testing": from each training query ``q`` of the
desired class, triplets ``(q, x, y)`` are generated such that ``q`` and
``x`` belong to the class while ``q`` and ``y`` do not.  Sampling is
seeded and uniform over the eligible (query, positive, negative)
combinations.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Mapping, Sequence

from repro.exceptions import TrainingDataError
from repro.graph.typed_graph import NodeId
from repro.learning.objective import Triplet

LabelMap = Mapping[NodeId, frozenset[NodeId]]
"""query node -> set of nodes in the desired class w.r.t. that query."""


def generate_triplets(
    queries: Sequence[NodeId],
    labels: LabelMap,
    universe: Iterable[NodeId],
    num_examples: int,
    seed: int = 0,
) -> list[Triplet]:
    """Sample ``num_examples`` triplets (q, x, y) from labelled queries.

    Parameters
    ----------
    queries:
        Training query nodes (each must have at least one positive).
    labels:
        Positives per query (class membership is symmetric in the paper,
        but only the query->positives direction is needed here).
    universe:
        Candidate pool for negatives — all anchor-type nodes.
    num_examples:
        Size of Omega.
    seed:
        RNG seed; sampling is reproducible.
    """
    if num_examples <= 0:
        raise TrainingDataError("num_examples must be positive")
    rng = random.Random(seed)
    pool = sorted(universe, key=repr)
    usable: list[tuple[NodeId, list[NodeId], list[NodeId]]] = []
    for q in queries:
        positives = sorted(labels.get(q, frozenset()), key=repr)
        positives = [x for x in positives if x != q]
        if not positives:
            continue
        excluded = set(positives) | {q}
        negatives = [y for y in pool if y not in excluded]
        if negatives:
            usable.append((q, positives, negatives))
    if not usable:
        raise TrainingDataError(
            "no usable training queries (every query lacks positives or negatives)"
        )
    triplets: list[Triplet] = []
    for _ in range(num_examples):
        q, positives, negatives = rng.choice(usable)
        x = rng.choice(positives)
        y = rng.choice(negatives)
        triplets.append((q, x, y))
    return triplets
