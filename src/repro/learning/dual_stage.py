"""Dual-stage training (Sect. III-C, Alg. 1) and its multi-stage extension.

Matching every metagraph dominates the offline phase, but the optimal
weight vector is sparse: only a few metagraphs characterise a class.
Dual-stage training therefore:

1. **Seed stage** — matches only the metapaths K0 (cheap to identify,
   cheap to match) and trains seed weights ``w0``.
2. **Candidate stage** — scores every unmatched metagraph by the
   candidate heuristic (Eq. 7)

       H(Mj) = max_{Mi in K0} w0[i] * SS(Mi, Mj)

   (structural similarity to a highly weighted seed implies functional
   similarity), matches only the top-|K| candidates, and retrains on
   K0 ∪ K.

``reverse=True`` gives RCH, the Fig. 10 control that picks the *least*
promising candidates.  :func:`multi_stage_train` generalises to
progressive candidate batches with a caller-supplied stopping test.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import LearningError
from repro.graph.typed_graph import TypedGraph
from repro.index.instance_index import InstanceIndex
from repro.index.transform import Transform, identity
from repro.index.vectors import MetagraphVectors, build_vectors
from repro.learning.objective import Triplet
from repro.learning.trainer import Trainer
from repro.matching.base import MatcherProtocol
from repro.metagraph.catalog import MetagraphCatalog
from repro.metagraph.similarity import structural_similarity


def candidate_heuristic_scores(
    catalog: MetagraphCatalog,
    seed_ids: Sequence[int],
    seed_weights: np.ndarray,
) -> dict[int, float]:
    """H(Mj) for every non-seed metagraph (Eq. 7)."""
    scores: dict[int, float] = {}
    seeds = [(i, catalog[i]) for i in seed_ids]
    for j in catalog.ids():
        if j in seed_ids:
            continue
        scores[j] = max(
            (
                float(seed_weights[i]) * structural_similarity(seed, catalog[j])
                for i, seed in seeds
            ),
            default=0.0,
        )
    return scores


def select_candidates(
    scores: dict[int, float], num_candidates: int, reverse: bool = False
) -> list[int]:
    """Top-|K| ids by heuristic score (or bottom-|K| for RCH)."""
    ordered = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
    if reverse:
        ordered = ordered[::-1]
    return [mg_id for mg_id, _score in ordered[:num_candidates]]


@dataclass
class DualStageResult:
    """Everything Alg. 1 produces, plus cost accounting."""

    weights: np.ndarray
    seed_ids: tuple[int, ...]
    candidate_ids: tuple[int, ...]
    seed_weights: np.ndarray
    vectors: MetagraphVectors
    index: InstanceIndex
    seed_match_seconds: float = 0.0
    candidate_match_seconds: float = 0.0
    train_seconds: float = 0.0
    heuristic_scores: dict[int, float] = field(default_factory=dict)

    @property
    def matched_ids(self) -> tuple[int, ...]:
        """All metagraph ids whose instances were computed."""
        return tuple(sorted(set(self.seed_ids) | set(self.candidate_ids)))

    @property
    def total_match_seconds(self) -> float:
        """Total matching cost across both stages."""
        return self.seed_match_seconds + self.candidate_match_seconds


def dual_stage_train(
    graph: TypedGraph,
    catalog: MetagraphCatalog,
    triplets: Sequence[Triplet],
    num_candidates: int,
    trainer: Trainer | None = None,
    matcher: MatcherProtocol | None = None,
    transform: Transform = identity,
    reverse_heuristic: bool = False,
) -> DualStageResult:
    """Alg. 1: seed stage on metapaths, candidate stage on top-|K|."""
    trainer = trainer or Trainer()
    seed_ids = catalog.metapath_ids()
    if not seed_ids:
        raise LearningError(
            "catalog contains no metapaths to use as dual-stage seeds"
        )
    # --- seed stage -----------------------------------------------------
    match_time = [0.0]

    def on_metagraph(_mg_id: int, seconds: float) -> None:
        match_time[0] += seconds

    vectors, index = build_vectors(
        graph,
        catalog,
        mg_ids=seed_ids,
        matcher=matcher,
        transform=transform,
        on_metagraph=on_metagraph,
    )
    seed_match_seconds = match_time[0]
    train_start = time.perf_counter()
    w0 = trainer.train(triplets, vectors, active_ids=seed_ids)
    train_seconds = time.perf_counter() - train_start

    # --- candidate stage -------------------------------------------------
    scores = candidate_heuristic_scores(catalog, seed_ids, w0)
    candidates = select_candidates(scores, num_candidates, reverse=reverse_heuristic)
    match_time[0] = 0.0
    if candidates:
        build_vectors(
            graph,
            catalog,
            mg_ids=candidates,
            matcher=matcher,
            transform=transform,
            vectors=vectors,
            index=index,
            on_metagraph=on_metagraph,
        )
    candidate_match_seconds = match_time[0]
    active = sorted(set(seed_ids) | set(candidates))
    train_start = time.perf_counter()
    weights = trainer.train(triplets, vectors, active_ids=active)
    train_seconds += time.perf_counter() - train_start

    return DualStageResult(
        weights=weights,
        seed_ids=tuple(seed_ids),
        candidate_ids=tuple(candidates),
        seed_weights=w0,
        vectors=vectors,
        index=index,
        seed_match_seconds=seed_match_seconds,
        candidate_match_seconds=candidate_match_seconds,
        train_seconds=train_seconds,
        heuristic_scores=scores,
    )


def multi_stage_train(
    graph: TypedGraph,
    catalog: MetagraphCatalog,
    triplets: Sequence[Triplet],
    batch_size: int,
    max_stages: int,
    stop: Callable[[np.ndarray, int], bool],
    trainer: Trainer | None = None,
    matcher: MatcherProtocol | None = None,
    transform: Transform = identity,
) -> DualStageResult:
    """The multi-stage generalisation (Sect. III-C, last paragraph).

    Candidates are added in batches of ``batch_size``; after each stage
    the previously selected metagraphs act as the new seeds.  ``stop``
    receives the current weights and the stage number and returns True
    when training accuracy is acceptable.
    """
    trainer = trainer or Trainer()
    seed_ids = list(catalog.metapath_ids())
    if not seed_ids:
        raise LearningError(
            "catalog contains no metapaths to use as multi-stage seeds"
        )
    match_time = [0.0]

    def on_metagraph(_mg_id: int, seconds: float) -> None:
        match_time[0] += seconds

    vectors, index = build_vectors(
        graph, catalog, mg_ids=seed_ids, matcher=matcher,
        transform=transform, on_metagraph=on_metagraph,
    )
    seed_match_seconds = match_time[0]
    match_time[0] = 0.0
    train_start = time.perf_counter()
    weights = trainer.train(triplets, vectors, active_ids=seed_ids)
    train_seconds = time.perf_counter() - train_start
    w0 = weights.copy()
    active = list(seed_ids)
    all_candidates: list[int] = []

    for stage in range(1, max_stages + 1):
        if stop(weights, stage - 1):
            break
        scores = candidate_heuristic_scores(catalog, active, weights)
        batch = select_candidates(scores, batch_size)
        if not batch:
            break
        build_vectors(
            graph, catalog, mg_ids=batch, matcher=matcher,
            transform=transform, vectors=vectors, index=index,
            on_metagraph=on_metagraph,
        )
        active = sorted(set(active) | set(batch))
        all_candidates.extend(batch)
        train_start = time.perf_counter()
        weights = trainer.train(triplets, vectors, active_ids=active)
        train_seconds += time.perf_counter() - train_start

    return DualStageResult(
        weights=weights,
        seed_ids=tuple(seed_ids),
        candidate_ids=tuple(all_candidates),
        seed_weights=w0,
        vectors=vectors,
        index=index,
        seed_match_seconds=seed_match_seconds,
        candidate_match_seconds=match_time[0],
        train_seconds=train_seconds,
    )
