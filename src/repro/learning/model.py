"""ProximityModel: the trained artefact answering online queries.

Holds the learned weight vector, the vector store and the anchor node
universe, and produces the descending-proximity ranking of Sect. II-B's
online phase.  Ranking a query is a lookup, not a traversal: only the
query's *partners* (nodes sharing at least one metagraph instance) can
have non-zero proximity, so the candidate set is tiny relative to |V|.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence
from pathlib import Path

import numpy as np

from repro.exceptions import LearningError
from repro.graph.typed_graph import NodeId
from repro.index.vectors import MetagraphVectors
from repro.learning.proximity import mgp


class ProximityModel:
    """A trained MGP model for one semantic class of proximity."""

    def __init__(
        self,
        weights: np.ndarray,
        vectors: MetagraphVectors,
        name: str = "",
    ):
        weights = np.asarray(weights, dtype=float)
        if weights.ndim != 1 or len(weights) != vectors.catalog_size:
            raise LearningError(
                f"weight vector of length {weights.shape} does not match "
                f"catalog size {vectors.catalog_size}"
            )
        if np.any(weights < 0):
            raise LearningError("MGP weights must be non-negative (Def. 3)")
        self.weights = weights
        self.vectors = vectors
        self.name = name

    def proximity(self, x: NodeId, y: NodeId) -> float:
        """pi(x, y; w*) for any two nodes."""
        return mgp(self.vectors, x, y, self.weights)

    def rank(
        self,
        query: NodeId,
        universe: Iterable[NodeId] | None = None,
        k: int | None = None,
    ) -> list[tuple[NodeId, float]]:
        """Nodes in descending proximity to ``query``.

        ``universe`` bounds the result (e.g. all user nodes); when None,
        only the query's partners are returned — every other node has
        proximity exactly 0.  Ties are broken deterministically by node
        repr.  The query itself is excluded.
        """
        candidates = self.vectors.partners(query)
        scored = [
            (node, self.proximity(query, node))
            for node in candidates
            if node != query
        ]
        if universe is not None:
            rest = [
                (node, 0.0)
                for node in universe
                if node != query and node not in candidates
            ]
            scored.extend(rest)
        scored.sort(key=lambda pair: (-pair[1], repr(pair[0])))
        return scored[:k] if k is not None else scored

    def explain(
        self, x: NodeId, y: NodeId, k: int = 5
    ) -> list[tuple[int, float]]:
        """Per-metagraph contributions to pi(x, y) — Fig. 1(b)'s
        "result with explanation".

        Returns up to ``k`` (metagraph id, contribution) pairs sorted by
        contribution, where contribution ``i`` is
        ``2 * w[i] * m_xy[i] / (m_x . w + m_y . w)`` — the summands of
        Def. 3, so contributions add up to ``pi(x, y)``.
        """
        if x == y:
            return []
        m_xy = self.vectors.pair_vector(x, y)
        denominator = float(
            self.vectors.node_vector(x) @ self.weights
            + self.vectors.node_vector(y) @ self.weights
        )
        if denominator <= 0.0:
            return []
        contributions = 2.0 * self.weights * m_xy / denominator
        order = np.argsort(-contributions, kind="stable")
        return [
            (int(i), float(contributions[i]))
            for i in order[:k]
            if contributions[i] > 0.0
        ]

    def top_metagraphs(self, k: int = 10) -> list[tuple[int, float]]:
        """The k highest-weight metagraph ids — the class's signature."""
        order = np.argsort(-self.weights, kind="stable")[:k]
        return [(int(i), float(self.weights[i])) for i in order]

    # ------------------------------------------------------------------
    # weight persistence (vectors are rebuilt from the graph, not saved)
    # ------------------------------------------------------------------
    def save_weights(self, path: str | Path) -> None:
        """Persist the learned weights (JSON)."""
        doc = {"name": self.name, "weights": self.weights.tolist()}
        Path(path).write_text(json.dumps(doc), encoding="utf-8")

    @classmethod
    def load_weights(
        cls, path: str | Path, vectors: MetagraphVectors
    ) -> "ProximityModel":
        """Restore a model from saved weights plus a rebuilt vector store."""
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls(
            np.asarray(doc["weights"], dtype=float),
            vectors,
            name=doc.get("name", ""),
        )

    def __repr__(self) -> str:
        nonzero = int(np.sum(self.weights > 1e-6))
        return (
            f"<ProximityModel {self.name!r}: {len(self.weights)} metagraphs, "
            f"{nonzero} with non-trivial weight>"
        )


def uniform_model(vectors: MetagraphVectors, name: str = "MGP-U") -> ProximityModel:
    """MGP-U baseline: uniform weights over the matched metagraphs."""
    weights = np.zeros(vectors.catalog_size)
    matched = sorted(vectors.matched_ids)
    if matched:
        weights[matched] = 1.0
    return ProximityModel(weights, vectors, name=name)


def single_metagraph_model(
    vectors: MetagraphVectors, mg_id: int, name: str = "MGP-B"
) -> ProximityModel:
    """A model that uses exactly one metagraph (MGP-B building block)."""
    weights = np.zeros(vectors.catalog_size)
    weights[mg_id] = 1.0
    return ProximityModel(weights, vectors, name=name)


def restrict_weights(
    weights: np.ndarray, active_ids: Sequence[int]
) -> np.ndarray:
    """Zero out all weights except the given ids (returns a copy)."""
    restricted = np.zeros_like(weights)
    ids = list(active_ids)
    restricted[ids] = weights[ids]
    return restricted
