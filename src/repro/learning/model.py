"""ProximityModel: the trained artefact answering online queries.

Holds the learned weight vector, the vector store and the anchor node
universe, and produces the descending-proximity ranking of Sect. II-B's
online phase.  Ranking a query is a lookup, not a traversal: only the
query's *partners* (nodes sharing at least one metagraph instance) can
have non-zero proximity, so the candidate set is tiny relative to |V|.

Two scoring backends produce identical rankings (same nodes, same
tie-break order; scores agree to within float summation order — exactly
so for modest catalogs or dyadic-rational weights):

- the *scalar* path scores each partner with a dense ``mgp()`` call —
  simple, always available, used as the reference;
- the *compiled* path (:meth:`ProximityModel.compile`) scores against a
  :class:`~repro.index.compiled.CompiledVectors` CSR snapshot: the
  ``m_x . w`` products of every node and the ``m_xy . w`` products of
  every pair are precomputed in two O(nnz) passes when the weights are
  attached, after which ranking is one ``batch_mgp``-style vectorised
  pass over the candidate slice plus an ``np.argpartition`` top-k.
"""

from __future__ import annotations

import itertools
import json
import weakref
from collections.abc import Iterable, Sequence
from pathlib import Path

import numpy as np

from repro.exceptions import LearningError
from repro.graph.typed_graph import NodeId
from repro.index.compiled import CompiledVectors
from repro.index.vectors import MetagraphVectors
from repro.learning.proximity import mgp


class SortedUniverse(tuple):
    """A deduplicated candidate universe pre-sorted by node ``repr``.

    ``rank()`` must order equal-proximity nodes by ``repr`` — with a raw
    iterable that means re-sorting the whole universe on every query.
    Callers that query repeatedly (the facade, batched serving) build
    one :class:`SortedUniverse` and reuse it; the compiled path then
    fills zero-proximity tail slots by walking it in order instead of
    sorting.
    """

    def __new__(cls, nodes: Iterable[NodeId] = ()):
        # canonicalise on construction so the invariant (unique,
        # repr-sorted) holds however the instance was made
        return super().__new__(cls, sorted(set(nodes), key=repr))

    def members(self) -> frozenset:
        """The universe as a set, built lazily once per instance."""
        cached = getattr(self, "_members", None)
        if cached is None:
            cached = frozenset(self)
            self._members = cached
        return cached

    def mask_over(self, compiled: "CompiledVectors") -> np.ndarray:
        """Membership of each compiled anchor row in this universe.

        Built once per (universe, compiled) pair and cached on the
        universe, so batched serving filters candidates with a pure
        numpy gather instead of per-query hash lookups.
        """
        cache = getattr(self, "_masks", None)
        if cache is None:
            # weak keys: a retired snapshot (store recompiled after new
            # counts) must not be pinned by its old mask
            cache = weakref.WeakKeyDictionary()
            self._masks = cache
        mask = cache.get(compiled)  # CompiledVectors hashes by identity
        if mask is None:
            members = self.members()
            mask = np.fromiter(
                (node in members for node in compiled.nodes),
                dtype=bool,
                count=compiled.num_nodes,
            )
            mask.setflags(write=False)
            cache[compiled] = mask
        return mask


def pad_with_universe(
    result: list[tuple[NodeId, float]],
    query: NodeId,
    universe: "SortedUniverse",
    k: int | None,
) -> list[tuple[NodeId, float]]:
    """Fill the tail of a ranking with zero-proximity universe members.

    Extends ``result`` in place (and returns it) with ``(node, 0.0)``
    entries in the universe's repr order, skipping the query and the
    already-ranked nodes, up to ``k`` total entries (unbounded when
    ``k`` is None).  Shared by the compiled single-process path and the
    sharded router so both produce bit-identical tails.
    """
    needed = None if k is None else k - len(result)
    if needed is None or needed > 0:
        ranked = {node for node, _score in result}
        ranked.add(query)
        filler = (
            (node, 0.0) for node in universe if node not in ranked
        )
        if needed is None:
            result.extend(filler)
        else:
            result.extend(itertools.islice(filler, needed))
    return result


def require_valid_k(k: int | None) -> None:
    """Reject a negative result budget loudly.

    ``k=None`` means the full ranking and ``k=0`` a legitimately empty
    one; a negative ``k`` is always a caller bug, and silently
    returning ``[]`` for it hides the mistake.
    """
    if k is not None and k < 0:
        raise ValueError(f"k must be None or >= 0, got {k}")


def _descending_order(scores: np.ndarray, k: int | None) -> np.ndarray:
    """Positions of the top-k scores, descending, stable within ties.

    Callers arrange candidate positions in ascending ``repr`` order, so
    the stable sort realises the (-score, repr) tie-break.  For small k
    an ``np.argpartition`` pre-selection avoids sorting the full set;
    boundary ties are widened to keep the cut deterministic.
    """
    n = len(scores)
    if k is not None and k <= 0:
        return np.empty(0, dtype=np.intp)
    if k is None or k >= n:
        return np.argsort(-scores, kind="stable")
    threshold = scores[np.argpartition(-scores, k - 1)[k - 1]]
    keep = np.flatnonzero(scores >= threshold)
    keep = keep[np.argsort(-scores[keep], kind="stable")]
    return keep[:k]


class ProximityModel:
    """A trained MGP model for one semantic class of proximity."""

    def __init__(
        self,
        weights: np.ndarray,
        vectors: MetagraphVectors,
        name: str = "",
    ):
        weights = np.array(weights, dtype=float)  # own copy, frozen below
        if weights.ndim != 1 or len(weights) != vectors.catalog_size:
            raise LearningError(
                f"weight vector of length {weights.shape} does not match "
                f"catalog size {vectors.catalog_size}"
            )
        if np.any(weights < 0):
            raise LearningError("MGP weights must be non-negative (Def. 3)")
        # read-only: the compiled dot products are derived from the
        # weights once, so in-place mutation would desynchronise them
        weights.setflags(write=False)
        self.weights = weights
        self.vectors = vectors
        self.name = name
        self._compiled: CompiledVectors | None = None
        self._node_dots: np.ndarray | None = None
        self._pair_dots: np.ndarray | None = None

    # ------------------------------------------------------------------
    # compiled serving backend
    # ------------------------------------------------------------------
    @property
    def compiled(self) -> CompiledVectors | None:
        """The attached CSR backend, or None while on the scalar path."""
        return self._compiled

    def compile(self, compiled: CompiledVectors | None = None) -> "ProximityModel":
        """Attach the compiled scoring backend and precompute the dots.

        The CSR snapshot itself is shared across models (cached on the
        vector store); per-model state is just ``m_x . w`` for every
        node and ``m_xy . w`` for every pair, each one O(nnz) pass.
        Returns ``self`` for chaining.
        """
        if compiled is None:
            compiled = self.vectors.compile()
        elif not self.vectors.is_current_snapshot(compiled):
            # an explicit snapshot must be the store's *current* one —
            # anything else (stale pre-mutation snapshot, snapshot of a
            # different store) would silently serve wrong rankings
            raise LearningError(
                "compiled snapshot is not the current snapshot of this "
                "model's vector store; call compile() with no argument "
                "or pass vectors.compile()"
            )
        if compiled.catalog_size != self.vectors.catalog_size:
            raise LearningError(
                f"compiled backend over {compiled.catalog_size} metagraphs "
                f"does not match catalog size {self.vectors.catalog_size}"
            )
        self._compiled = compiled
        self._node_dots = compiled.node_dot_products(self.weights)
        self._pair_dots = compiled.pair_dot_products(self.weights)
        return self

    def proximity(self, x: NodeId, y: NodeId) -> float:
        """pi(x, y; w*) for any two nodes."""
        return mgp(self.vectors, x, y, self.weights)

    def rank(
        self,
        query: NodeId,
        universe: Iterable[NodeId] | None = None,
        k: int | None = None,
    ) -> list[tuple[NodeId, float]]:
        """Nodes in descending proximity to ``query``.

        ``universe`` bounds the result (e.g. all user nodes): scored
        candidates outside it are dropped, and its remaining members pad
        the tail with proximity 0.  When None, only the query's partners
        are returned — every other node has proximity exactly 0.  Ties
        are broken deterministically by node repr.  The query itself is
        excluded.  Dispatches to the compiled backend when one is
        attached (see :meth:`compile`); both paths return identical
        rankings.  A snapshot made stale by new counts folded into the
        vector store is recompiled transparently.

        ``k=0`` is a valid (empty) request; a negative ``k`` raises
        :class:`ValueError` instead of silently returning ``[]``.
        """
        require_valid_k(k)
        if self._compiled is not None:
            if not self.vectors.is_current_snapshot(self._compiled):
                self.compile()
            return self._rank_compiled(query, universe, k)
        return self._rank_scalar(query, universe, k)

    def _rank_scalar(
        self,
        query: NodeId,
        universe: Iterable[NodeId] | None,
        k: int | None,
    ) -> list[tuple[NodeId, float]]:
        """Reference path: one dense mgp() call per candidate."""
        if k is not None and k <= 0:
            return []
        candidates = self.vectors.partners(query)
        if universe is None:
            scored = [
                (node, self.proximity(query, node))
                for node in candidates
                if node != query
            ]
        else:
            members = universe.members() if isinstance(
                universe, SortedUniverse
            ) else set(universe)
            scored = [
                (node, self.proximity(query, node))
                for node in candidates
                if node != query and node in members
            ]
            scored.extend(
                (node, 0.0)
                for node in members
                if node != query and node not in candidates
            )
        scored.sort(key=lambda pair: (-pair[1], repr(pair[0])))
        return scored[:k] if k is not None else scored

    def _rank_compiled(
        self,
        query: NodeId,
        universe: Iterable[NodeId] | None,
        k: int | None,
    ) -> list[tuple[NodeId, float]]:
        """Compiled path: slice the CSR adjacency, score in one batch."""
        if k is not None and k <= 0:
            return []
        compiled = self._compiled
        assert compiled is not None
        row = compiled.position(query)
        if row is None:
            cand_pos = np.empty(0, dtype=np.int64)
            scores = np.empty(0, dtype=np.float64)
        else:
            cand_pos, pair_rows = compiled.candidates_of(row)
            keep = cand_pos != row
            cand_pos, pair_rows = cand_pos[keep], pair_rows[keep]
            numerators = 2.0 * self._pair_dots[pair_rows]
            denominators = self._node_dots[row] + self._node_dots[cand_pos]
            scores = np.zeros(len(cand_pos), dtype=np.float64)
            positive = denominators > 0.0
            scores[positive] = numerators[positive] / denominators[positive]

        nodes = compiled.nodes
        if universe is None:
            order = _descending_order(scores, k)
            return [(nodes[cand_pos[j]], float(scores[j])) for j in order]

        if not isinstance(universe, SortedUniverse):
            universe = SortedUniverse(universe)
        in_universe = universe.mask_over(compiled)[cand_pos]
        hit = np.flatnonzero(in_universe & (scores > 0.0))
        order = hit[_descending_order(scores[hit], k)]
        result = [(nodes[cand_pos[j]], float(scores[j])) for j in order]
        return pad_with_universe(result, query, universe, k)

    def explain(
        self, x: NodeId, y: NodeId, k: int = 5
    ) -> list[tuple[int, float]]:
        """Per-metagraph contributions to pi(x, y) — Fig. 1(b)'s
        "result with explanation".

        Returns up to ``k`` (metagraph id, contribution) pairs sorted by
        contribution, where contribution ``i`` is
        ``2 * w[i] * m_xy[i] / (m_x . w + m_y . w)`` — the summands of
        Def. 3, so contributions add up to ``pi(x, y)``.
        """
        if x == y:
            return []
        m_xy = self.vectors.pair_vector(x, y)
        denominator = float(
            self.vectors.node_vector(x) @ self.weights
            + self.vectors.node_vector(y) @ self.weights
        )
        if denominator <= 0.0:
            return []
        contributions = 2.0 * self.weights * m_xy / denominator
        order = np.argsort(-contributions, kind="stable")
        return [
            (int(i), float(contributions[i]))
            for i in order[:k]
            if contributions[i] > 0.0
        ]

    def top_metagraphs(self, k: int = 10) -> list[tuple[int, float]]:
        """The k highest-weight metagraph ids — the class's signature."""
        order = np.argsort(-self.weights, kind="stable")[:k]
        return [(int(i), float(self.weights[i])) for i in order]

    # ------------------------------------------------------------------
    # weight persistence (vectors are rebuilt from the graph, not saved)
    # ------------------------------------------------------------------
    def save_weights(self, path: str | Path) -> None:
        """Persist the learned weights (JSON)."""
        doc = {"name": self.name, "weights": self.weights.tolist()}
        Path(path).write_text(json.dumps(doc), encoding="utf-8")

    @classmethod
    def load_weights(
        cls, path: str | Path, vectors: MetagraphVectors
    ) -> "ProximityModel":
        """Restore a model from saved weights plus a rebuilt vector store."""
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls(
            np.asarray(doc["weights"], dtype=float),
            vectors,
            name=doc.get("name", ""),
        )

    def __repr__(self) -> str:
        nonzero = int(np.sum(self.weights > 1e-6))
        return (
            f"<ProximityModel {self.name!r}: {len(self.weights)} metagraphs, "
            f"{nonzero} with non-trivial weight>"
        )


def uniform_model(vectors: MetagraphVectors, name: str = "MGP-U") -> ProximityModel:
    """MGP-U baseline: uniform weights over the matched metagraphs."""
    weights = np.zeros(vectors.catalog_size)
    matched = sorted(vectors.matched_ids)
    if matched:
        weights[matched] = 1.0
    return ProximityModel(weights, vectors, name=name)


def single_metagraph_model(
    vectors: MetagraphVectors, mg_id: int, name: str = "MGP-B"
) -> ProximityModel:
    """A model that uses exactly one metagraph (MGP-B building block)."""
    weights = np.zeros(vectors.catalog_size)
    weights[mg_id] = 1.0
    return ProximityModel(weights, vectors, name=name)


def restrict_weights(
    weights: np.ndarray, active_ids: Sequence[int]
) -> np.ndarray:
    """Zero out all weights except the given ids (returns a copy)."""
    restricted = np.zeros_like(weights)
    ids = list(active_ids)
    restricted[ids] = weights[ids]
    return restricted
