"""Pairwise ranking objective (Eq. 4–5) over precomputed triplet matrices.

Each training example is a triplet ``(q, x, y)``: x should rank before y
for query q.  The probability of an example (Eq. 4) is a sigmoid of the
proximity difference, and training maximises the log-likelihood (Eq. 5):

    P(q,x,y;w) = 1 / (1 + exp(-mu * (pi(q,x;w) - pi(q,y;w))))
    L(w)       = sum log P(q,x,y;w)

:class:`TripletMatrices` gathers the five metagraph vectors per triplet
(m_qx, m_qy, m_q, m_x, m_y) restricted to the *active* metagraph ids, so
likelihood and gradient evaluation are single numpy expressions.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import TrainingDataError
from repro.graph.typed_graph import NodeId
from repro.index.vectors import MetagraphVectors
from repro.learning.proximity import batch_mgp, batch_mgp_gradient

Triplet = tuple[NodeId, NodeId, NodeId]


class TripletMatrices:
    """Dense per-triplet vector stacks restricted to active metagraph ids."""

    def __init__(
        self,
        triplets: Sequence[Triplet],
        vectors: MetagraphVectors,
        active_ids: Sequence[int],
    ):
        if not triplets:
            raise TrainingDataError("no training triplets supplied")
        if not len(active_ids):
            raise TrainingDataError("no active metagraph ids supplied")
        self.active_ids = np.asarray(sorted(active_ids), dtype=int)
        if len(set(active_ids)) != len(self.active_ids):
            raise TrainingDataError("active metagraph ids contain duplicates")
        cols = self.active_ids
        n = len(triplets)
        d = len(cols)
        self.m_qx = np.empty((n, d))
        self.m_qy = np.empty((n, d))
        self.m_q = np.empty((n, d))
        self.m_x = np.empty((n, d))
        self.m_y = np.empty((n, d))
        for row, (q, x, y) in enumerate(triplets):
            if x == y or q == x or q == y:
                raise TrainingDataError(
                    f"degenerate triplet {(q, x, y)!r}: nodes must be distinct"
                )
            self.m_qx[row] = vectors.pair_vector(q, x)[cols]
            self.m_qy[row] = vectors.pair_vector(q, y)[cols]
            self.m_q[row] = vectors.node_vector(q)[cols]
            self.m_x[row] = vectors.node_vector(x)[cols]
            self.m_y[row] = vectors.node_vector(y)[cols]

    @property
    def num_triplets(self) -> int:
        """Number of training examples."""
        return len(self.m_q)

    @property
    def dim(self) -> int:
        """Number of active metagraph ids."""
        return len(self.active_ids)

    def expand(self, w_active: np.ndarray, full_size: int) -> np.ndarray:
        """Scatter an active-space weight vector into the full id space."""
        full = np.zeros(full_size)
        full[self.active_ids] = w_active
        return full


def example_probabilities(
    matrices: TripletMatrices, w: np.ndarray, mu: float
) -> np.ndarray:
    """P(q,x,y;w) per triplet (Eq. 4)."""
    pi_x = batch_mgp(matrices.m_qx, matrices.m_q, matrices.m_x, w)
    pi_y = batch_mgp(matrices.m_qy, matrices.m_q, matrices.m_y, w)
    # numerically stable sigmoid
    z = mu * (pi_x - pi_y)
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    expz = np.exp(z[~pos])
    out[~pos] = expz / (1.0 + expz)
    return out


def log_likelihood(matrices: TripletMatrices, w: np.ndarray, mu: float) -> float:
    """L(w; Omega) (Eq. 5), with probabilities floored for stability."""
    probs = example_probabilities(matrices, w, mu)
    return float(np.sum(np.log(np.maximum(probs, 1e-300))))


def log_likelihood_gradient(
    matrices: TripletMatrices, w: np.ndarray, mu: float
) -> np.ndarray:
    """Gradient of L w.r.t. the active weights (Sect. III-B)."""
    probs = example_probabilities(matrices, w, mu)
    grad_x = batch_mgp_gradient(matrices.m_qx, matrices.m_q, matrices.m_x, w)
    grad_y = batch_mgp_gradient(matrices.m_qy, matrices.m_q, matrices.m_y, w)
    coeff = mu * (1.0 - probs)
    return coeff @ (grad_x - grad_y)
