"""Supervised learning of metagraph-based proximity (Sect. III)."""

from repro.learning.dual_stage import (
    DualStageResult,
    candidate_heuristic_scores,
    dual_stage_train,
    multi_stage_train,
    select_candidates,
)
from repro.learning.examples import LabelMap, generate_triplets
from repro.learning.model import (
    ProximityModel,
    restrict_weights,
    single_metagraph_model,
    uniform_model,
)
from repro.learning.objective import (
    Triplet,
    TripletMatrices,
    example_probabilities,
    log_likelihood,
    log_likelihood_gradient,
)
from repro.learning.proximity import (
    batch_mgp,
    batch_mgp_gradient,
    mgp,
    mgp_from_vectors,
    mgp_gradient_from_vectors,
)
from repro.learning.trainer import Trainer, TrainerConfig, TrainingRun

__all__ = [
    "DualStageResult",
    "LabelMap",
    "ProximityModel",
    "Trainer",
    "TrainerConfig",
    "TrainingRun",
    "Triplet",
    "TripletMatrices",
    "batch_mgp",
    "batch_mgp_gradient",
    "candidate_heuristic_scores",
    "dual_stage_train",
    "example_probabilities",
    "generate_triplets",
    "log_likelihood",
    "log_likelihood_gradient",
    "mgp",
    "mgp_from_vectors",
    "mgp_gradient_from_vectors",
    "multi_stage_train",
    "restrict_weights",
    "select_candidates",
    "single_metagraph_model",
    "uniform_model",
]
