"""GraMi-style frequent metagraph mining on a single large graph.

The paper uses GRAMI [9] off the shelf for offline subproblem 1 (mining
the metagraph set M).  This module is our from-scratch substitute with
the same semantics:

- **support** is MNI (minimum node image): the support of a pattern is
  the minimum, over pattern nodes ``u``, of the number of distinct graph
  nodes that appear as the image of ``u`` in some embedding.  Embeddings
  use standard (non-induced) subgraph isomorphism, as GRAMI does.
- **anti-monotone pruning**: MNI support never increases when a pattern
  grows, so growth proceeds only from frequent patterns and each
  isomorphism class is tested once (canonical-form dedup).
- support evaluation short-circuits once every pattern node has reached
  the threshold, and abandons patterns whose embedding enumeration
  exceeds a configurable budget (reported, never silent).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.graph.typed_graph import TypedGraph
from repro.matching.backtracking import backtrack_embeddings
from repro.matching.ordering import GraphCardinalities, estimated_cost_order
from repro.metagraph.canonical import CanonicalForm, canonical_form, form_edge_entry
from repro.metagraph.metagraph import Metagraph
from repro.mining.enumerate import extensions, single_edge_patterns


@dataclass(frozen=True)
class MinerConfig:
    """Configuration of the GraMi-style miner.

    Parameters
    ----------
    max_nodes:
        Largest pattern size; the paper restricts metagraphs to 5 nodes.
    max_edges:
        Optional edge bound (None = unbounded).
    min_support:
        MNI support threshold for a pattern to be frequent.
    embedding_budget:
        Abort support evaluation for one pattern after this many
        embeddings.  Early abortion can only *under*-report support, so
        a budget hit is treated as frequent (the pattern demonstrably
        has an enormous embedding count) and counted in
        :class:`MiningResult.budget_hits`.
    """

    max_nodes: int = 5
    max_edges: int | None = None
    min_support: int = 2
    embedding_budget: int = 2_000_000

    def to_json_dict(self) -> dict:
        """The knobs as plain JSON types (snapshot/manifest provenance)."""
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class SupportEstimate:
    """Outcome of one MNI support evaluation."""

    support: int
    budget_hit: bool

    def is_frequent(self, threshold: int) -> bool:
        """Frequent iff the threshold was reached or evaluation was cut short."""
        return self.support >= threshold or self.budget_hit


@dataclass
class MiningResult:
    """Outcome of a mining run."""

    patterns: list[Metagraph] = field(default_factory=list)
    supports: dict[CanonicalForm, int] = field(default_factory=dict)
    candidates_tested: int = 0
    budget_hits: int = 0

    def support_of(self, pattern: Metagraph) -> int:
        """MNI support recorded for a mined pattern."""
        return self.supports[canonical_form(pattern)]


def mni_support(
    graph: TypedGraph,
    pattern: Metagraph,
    threshold: int,
    embedding_budget: int | None = None,
    cardinalities: GraphCardinalities | None = None,
) -> SupportEstimate:
    """MNI support of ``pattern`` on ``graph``.

    Short-circuits at ``threshold`` (returns ``threshold`` as soon as
    every pattern node has at least ``threshold`` distinct images), so
    the exact value is only computed when it is below the threshold.
    """
    order = estimated_cost_order(graph, pattern, cardinalities)
    images: list[set] = [set() for _ in range(pattern.size)]
    enumerated = 0
    for embedding in backtrack_embeddings(graph, pattern, order, induced=False):
        enumerated += 1
        for u, v in embedding.items():
            images[u].add(v)
        if all(len(s) >= threshold for s in images):
            return SupportEstimate(threshold, budget_hit=False)
        if embedding_budget is not None and enumerated >= embedding_budget:
            return SupportEstimate(
                min(len(s) for s in images), budget_hit=True
            )
    return SupportEstimate(min(len(s) for s in images), budget_hit=False)


class GramiMiner:
    """Pattern-growth miner with MNI support and canonical dedup."""

    def __init__(self, config: MinerConfig | None = None):
        self.config = config or MinerConfig()

    def mine(self, graph: TypedGraph) -> MiningResult:
        """Mine all frequent patterns of the configured size on ``graph``."""
        cfg = self.config
        result = MiningResult()
        if graph.num_edges == 0:
            return result
        edge_rules = graph.observed_edge_rules()
        types = sorted(graph.types)
        stats = GraphCardinalities(graph)
        seen: set[CanonicalForm] = set()
        frontier: list[Metagraph] = []

        def consider(pattern: Metagraph) -> None:
            form = canonical_form(pattern)
            if form in seen:
                return
            seen.add(form)
            result.candidates_tested += 1
            estimate = mni_support(
                graph,
                pattern,
                cfg.min_support,
                embedding_budget=cfg.embedding_budget,
                cardinalities=stats,
            )
            if not estimate.is_frequent(cfg.min_support):
                return
            if estimate.budget_hit:
                result.budget_hits += 1
            canonical = Metagraph(form[0], [form_edge_entry(e) for e in form[1]])
            result.patterns.append(canonical)
            result.supports[form] = estimate.support
            frontier.append(canonical)

        for pattern in single_edge_patterns(edge_rules):
            consider(pattern)
        while frontier:
            current, frontier = frontier, []
            for pattern in current:
                for extension in extensions(
                    pattern, edge_rules, types, cfg.max_nodes, cfg.max_edges
                ):
                    consider(extension)
        result.patterns.sort(
            key=lambda m: (m.size, m.num_edges, canonical_form(m))
        )
        return result
