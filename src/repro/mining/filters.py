"""The paper's metagraph filters (Sect. V-A "Metagraphs").

After mining, the paper keeps only metagraphs that

1. are symmetric (Def. 1) — the paper addresses symmetric classes;
2. contain at least two anchor-type (``user``) nodes **at symmetric
   positions** — otherwise the metagraph can never contribute to the
   proximity between two users (Eq. 1 counts symmetric co-occurrences);
3. contain at least one node of another type;
4. have at most ``max_nodes`` nodes (5 in the paper).

:func:`build_catalog` applies the filters and assembles the
:class:`~repro.metagraph.catalog.MetagraphCatalog` that the rest of the
pipeline consumes.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.metagraph.catalog import MetagraphCatalog
from repro.metagraph.metagraph import Metagraph
from repro.metagraph.symmetry import anchor_symmetric_pairs, is_symmetric


def passes_paper_filters(
    metagraph: Metagraph, anchor_type: str = "user", max_nodes: int = 5
) -> bool:
    """True iff the metagraph satisfies all four Sect. V-A conditions."""
    if metagraph.size > max_nodes:
        return False
    if metagraph.count_type(anchor_type) < 2:
        return False
    if metagraph.count_type(anchor_type) == metagraph.size:
        return False  # needs at least one node of another type
    if not is_symmetric(metagraph):
        return False
    return bool(anchor_symmetric_pairs(metagraph, anchor_type))


def filter_metagraphs(
    metagraphs: Iterable[Metagraph],
    anchor_type: str = "user",
    max_nodes: int = 5,
) -> list[Metagraph]:
    """Keep only metagraphs passing :func:`passes_paper_filters`."""
    return [
        m
        for m in metagraphs
        if passes_paper_filters(m, anchor_type=anchor_type, max_nodes=max_nodes)
    ]


def build_catalog(
    metagraphs: Iterable[Metagraph],
    anchor_type: str = "user",
    max_nodes: int = 5,
) -> MetagraphCatalog:
    """Filter mined patterns and index the survivors into a catalog."""
    catalog = MetagraphCatalog(anchor_type=anchor_type)
    for metagraph in filter_metagraphs(
        metagraphs, anchor_type=anchor_type, max_nodes=max_nodes
    ):
        catalog.add_if_new(metagraph)
    return catalog
