"""Metagraph mining (offline subproblem 1): a GraMi-style substitute."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.mining.enumerate import enumerate_patterns, extensions, single_edge_patterns
from repro.mining.filters import build_catalog, filter_metagraphs, passes_paper_filters
from repro.mining.grami import (
    GramiMiner,
    MinerConfig,
    MiningResult,
    SupportEstimate,
    mni_support,
)

if TYPE_CHECKING:
    from repro.graph.typed_graph import TypedGraph
    from repro.metagraph.catalog import MetagraphCatalog


def mine_catalog(
    graph: TypedGraph,
    config: MinerConfig | None = None,
    anchor_type: str = "user",
) -> MetagraphCatalog:
    """End-to-end offline subproblem 1: mine, filter, and index.

    Returns the :class:`~repro.metagraph.catalog.MetagraphCatalog` of
    frequent, symmetric, anchor-pair metagraphs on ``graph``.
    """
    miner = GramiMiner(config or MinerConfig())
    result = miner.mine(graph)
    max_nodes = miner.config.max_nodes
    return build_catalog(result.patterns, anchor_type=anchor_type, max_nodes=max_nodes)


__all__ = [
    "GramiMiner",
    "MinerConfig",
    "MiningResult",
    "SupportEstimate",
    "build_catalog",
    "enumerate_patterns",
    "extensions",
    "filter_metagraphs",
    "mine_catalog",
    "mni_support",
    "passes_paper_filters",
    "single_edge_patterns",
]
