"""Schema-driven enumeration of connected typed patterns.

The pattern-growth core shared by the miner: starting from single-edge
patterns over the allowed edge rules, grow by either attaching a new
node (allowed rule to an existing node) or closing an edge between two
existing non-adjacent nodes.  Canonical forms deduplicate the search so
each isomorphism class is visited once.

An *edge rule* is ``(type_a, type_b, EdgeKind)`` — the schema-level
counterpart of a kinded edge.  Plain 2-tuples ``(type_a, type_b)`` are
accepted everywhere and mean an unlabeled undirected rule, so existing
callers (and plain graphs) see the exact legacy pattern space.  Directed
rules are orientation-significant: ``("a", "b", EdgeKind("x", True))``
licenses only ``a --x--> b`` edges.

Every connected pattern with at most ``max_nodes`` nodes (and, when
bounded, ``max_edges`` edges) over the given rules is generated:
removing a leaf node or a cycle edge from any such pattern yields a
smaller valid pattern, so induction over the growth operations covers
the whole space.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.graph.typed_graph import PLAIN, EdgeKind
from repro.metagraph.canonical import (
    CanonicalForm,
    canonical_form,
    canonicalize,
    form_edge_entry,
)
from repro.metagraph.metagraph import Metagraph

TypePair = tuple[str, str]
EdgeRule = tuple[str, str, EdgeKind]
# what callers may pass: bare type pairs (plain rules) or full rules
RuleLike = TypePair | EdgeRule


def _norm_rule(entry: RuleLike) -> EdgeRule:
    """Normalize a rule: undirected rules store sorted endpoint types."""
    if len(entry) == 2:
        a, b = entry
        kind = PLAIN
    else:
        a, b, kind = entry
    if kind.directed or a <= b:
        return (a, b, kind)
    return (b, a, kind)


def _norm_rules(rules: Iterable[RuleLike]) -> frozenset[EdgeRule]:
    return frozenset(_norm_rule(r) for r in rules)


def _closing_entries(
    rules: frozenset[EdgeRule], u: int, type_u: str, v: int, type_v: str
) -> Iterator[tuple[int, int, EdgeKind]]:
    """Kinded edge entries the rules allow between two existing nodes."""
    for a, b, kind in sorted(rules):
        if kind.directed:
            if (type_u, type_v) == (a, b):
                yield (u, v, kind)
            if (type_v, type_u) == (a, b):
                yield (v, u, kind)
        elif (a, b) == ((type_u, type_v) if type_u <= type_v else (type_v, type_u)):
            yield (u, v, kind)


def single_edge_patterns(rules: Iterable[RuleLike]) -> list[Metagraph]:
    """One two-node pattern per allowed edge rule (canonical labelling)."""
    patterns = []
    for a, b, kind in sorted(_norm_rules(rules)):
        patterns.append(canonicalize(Metagraph([a, b], [(0, 1, kind)])))
    return patterns


def extensions(
    pattern: Metagraph,
    rules: Iterable[RuleLike],
    types: Iterable[str],
    max_nodes: int,
    max_edges: int | None,
) -> Iterator[Metagraph]:
    """All one-step extensions of a pattern.

    Either a new node of any type attached to one existing node, or a
    new edge between two existing non-adjacent nodes — both restricted
    to allowed edge rules (with the rule's kind and orientation).
    """
    normed = _norm_rules(rules)
    type_set = set(types)
    n = pattern.size
    base = list(pattern.edges_with_kinds())
    if max_edges is None or pattern.num_edges < max_edges:
        # close an edge between existing nodes
        for u in range(n):
            for v in range(u + 1, n):
                if pattern.has_edge(u, v):
                    continue
                for entry in _closing_entries(
                    normed, u, pattern.node_type(u), v, pattern.node_type(v)
                ):
                    yield Metagraph(pattern.types, base + [entry])
        # attach a new node
        if n < max_nodes:
            for a, b, kind in sorted(normed):
                for u in range(n):
                    type_u = pattern.node_type(u)
                    if type_u == a and b in type_set:
                        yield Metagraph(
                            list(pattern.types) + [b], base + [(u, n, kind)]
                        )
                    if kind.directed:
                        if type_u == b and a in type_set:
                            yield Metagraph(
                                list(pattern.types) + [a], base + [(n, u, kind)]
                            )
                    elif type_u == b and a != b and a in type_set:
                        yield Metagraph(
                            list(pattern.types) + [a], base + [(u, n, kind)]
                        )


def enumerate_patterns(
    rules: Iterable[RuleLike],
    max_nodes: int = 5,
    max_edges: int | None = None,
) -> list[Metagraph]:
    """All connected typed patterns over the allowed edge rules.

    Patterns are returned canonically labelled, deduplicated up to
    isomorphism, sorted by (size, edges, canonical form) for
    determinism.  Single-node patterns are not produced (a metagraph
    describing proximity needs at least one edge).
    """
    normed = _norm_rules(rules)
    types = sorted({t for a, b, _ in normed for t in (a, b)})
    seen: set[CanonicalForm] = set()
    result: list[Metagraph] = []
    frontier: list[Metagraph] = []
    for pattern in single_edge_patterns(normed):
        form = canonical_form(pattern)
        if form not in seen:
            seen.add(form)
            result.append(pattern)
            frontier.append(pattern)
    while frontier:
        next_frontier: list[Metagraph] = []
        for pattern in frontier:
            for extension in extensions(pattern, normed, types, max_nodes, max_edges):
                form = canonical_form(extension)
                if form in seen:
                    continue
                seen.add(form)
                canonical = Metagraph(
                    form[0], [form_edge_entry(e) for e in form[1]]
                )
                result.append(canonical)
                next_frontier.append(canonical)
        frontier = next_frontier
    result.sort(key=lambda m: (m.size, m.num_edges, canonical_form(m)))
    return result
