"""Schema-driven enumeration of connected typed patterns.

The pattern-growth core shared by the miner: starting from single-edge
patterns over the allowed type pairs, grow by either attaching a new
node (allowed type pair to an existing node) or closing an edge between
two existing non-adjacent nodes.  Canonical forms deduplicate the search
so each isomorphism class is visited once.

Every connected pattern with at most ``max_nodes`` nodes (and, when
bounded, ``max_edges`` edges) over the given type pairs is generated:
removing a leaf node or a cycle edge from any such pattern yields a
smaller valid pattern, so induction over the growth operations covers
the whole space.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.metagraph.canonical import CanonicalForm, canonical_form, canonicalize
from repro.metagraph.metagraph import Metagraph

TypePair = tuple[str, str]


def _allowed(pairs: frozenset[TypePair], type_a: str, type_b: str) -> bool:
    pair = (type_a, type_b) if type_a <= type_b else (type_b, type_a)
    return pair in pairs


def single_edge_patterns(type_pairs: Iterable[TypePair]) -> list[Metagraph]:
    """One two-node pattern per allowed type pair (canonical labelling)."""
    patterns = []
    for a, b in sorted(set(type_pairs)):
        patterns.append(canonicalize(Metagraph([a, b], [(0, 1)])))
    return patterns


def extensions(
    pattern: Metagraph,
    type_pairs: frozenset[TypePair],
    types: Iterable[str],
    max_nodes: int,
    max_edges: int | None,
) -> Iterator[Metagraph]:
    """All one-step extensions of a pattern.

    Either a new node of any type attached to one existing node, or a
    new edge between two existing non-adjacent nodes — both restricted
    to allowed type pairs.
    """
    n = pattern.size
    if max_edges is None or pattern.num_edges < max_edges:
        # close an edge between existing nodes
        for u in range(n):
            for v in range(u + 1, n):
                if pattern.has_edge(u, v):
                    continue
                if _allowed(type_pairs, pattern.node_type(u), pattern.node_type(v)):
                    yield Metagraph(
                        pattern.types, set(pattern.edges) | {(u, v)}
                    )
        # attach a new node
        if n < max_nodes:
            for new_type in sorted(set(types)):
                for u in range(n):
                    if _allowed(type_pairs, pattern.node_type(u), new_type):
                        yield Metagraph(
                            list(pattern.types) + [new_type],
                            set(pattern.edges) | {(u, n)},
                        )


def enumerate_patterns(
    type_pairs: Iterable[TypePair],
    max_nodes: int = 5,
    max_edges: int | None = None,
) -> list[Metagraph]:
    """All connected typed patterns over the allowed type pairs.

    Patterns are returned canonically labelled, deduplicated up to
    isomorphism, sorted by (size, edges, canonical form) for
    determinism.  Single-node patterns are not produced (a metagraph
    describing proximity needs at least one edge).
    """
    pairs = frozenset(
        (a, b) if a <= b else (b, a) for a, b in type_pairs
    )
    types = sorted({t for pair in pairs for t in pair})
    seen: set[CanonicalForm] = set()
    result: list[Metagraph] = []
    frontier: list[Metagraph] = []
    for pattern in single_edge_patterns(pairs):
        form = canonical_form(pattern)
        if form not in seen:
            seen.add(form)
            result.append(pattern)
            frontier.append(pattern)
    while frontier:
        next_frontier: list[Metagraph] = []
        for pattern in frontier:
            for extension in extensions(pattern, pairs, types, max_nodes, max_edges):
                form = canonical_form(extension)
                if form in seen:
                    continue
                seen.add(form)
                canonical = Metagraph(form[0], form[1])
                result.append(canonical)
                next_frontier.append(canonical)
        frontier = next_frontier
    result.sort(key=lambda m: (m.size, m.num_edges, canonical_form(m)))
    return result
