"""Fig. 6 (NDCG) and Fig. 7 (MAP): accuracy of MGP against the baselines.

For each of the four (dataset, class) panels and each training-set size
|Omega|, five algorithms are compared, averaged over repeated 20/80
query splits:

- **MGP** — supervised learning over all metagraphs (Sect. III-B);
- **MPP** — the same learner restricted to metapaths;
- **MGP-U** — uniform weights (no learning);
- **MGP-B** — single best metagraph on training data;
- **SRW** — supervised random walks [5].

Shape to reproduce: MGP dominates everywhere and improves steadily with
|Omega| (paper: +11% NDCG / +16% MAP over the runner-up at 1000).
"""

from __future__ import annotations

from repro.baselines.mgp_variants import mgp_uniform, train_mgp_best, train_mpp
from repro.baselines.srw import SRWModel
from repro.eval.harness import average_results, evaluate_ranker, model_ranker
from repro.experiments.common import (
    dataset_class_pairs,
    splits_for,
    triplets_for_split,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_series
from repro.experiments.runner import OfflineRunner
from repro.learning.model import ProximityModel

ALGORITHMS = ("MGP", "MPP", "MGP-U", "MGP-B", "SRW")

PanelSeries = dict[str, list[tuple[int, float]]]


def _rank_model(phase, dataset, model):
    return model_ranker(model, dataset.universe)


def _evaluate_algorithm(
    algorithm: str,
    runner: OfflineRunner,
    dataset_name: str,
    class_name: str,
    num_examples: int,
    split,
    split_seed: int,
):
    config = runner.config
    phase = runner.offline(dataset_name)
    dataset = phase.dataset
    labels = dataset.class_labels(class_name)
    triplets = triplets_for_split(
        dataset, class_name, split, num_examples, split_seed
    )
    if algorithm == "MGP":
        weights = runner.trainer(seed=split_seed).train(triplets, phase.vectors)
        ranker = _rank_model(phase, dataset, ProximityModel(weights, phase.vectors))
    elif algorithm == "MPP":
        model = train_mpp(
            phase.catalog, phase.vectors, triplets, runner.trainer(seed=split_seed)
        )
        ranker = _rank_model(phase, dataset, model)
    elif algorithm == "MGP-U":
        ranker = _rank_model(phase, dataset, mgp_uniform(phase.vectors))
    elif algorithm == "MGP-B":
        model = train_mgp_best(
            phase.vectors, split.train, labels, dataset.universe, k=config.eval_k
        )
        ranker = _rank_model(phase, dataset, model)
    elif algorithm == "SRW":
        model = SRWModel(
            dataset.graph,
            epochs=config.srw_epochs,
            power_iterations=config.srw_power_iterations,
            seed=split_seed,
        ).fit(triplets)

        def ranker(q, _model=model, _dataset=dataset):
            return [n for n, _s in _model.rank(q, _dataset.universe)]

    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    return evaluate_ranker(ranker, split.test, labels, k=config.eval_k)


def run_panel(
    runner: OfflineRunner, dataset_name: str, class_name: str
) -> tuple[PanelSeries, PanelSeries]:
    """(NDCG series, MAP series) for one (dataset, class) panel."""
    config = runner.config
    dataset = runner.dataset(dataset_name)
    splits = splits_for(dataset, class_name, config.num_splits, config.seed)
    ndcg: PanelSeries = {a: [] for a in ALGORITHMS}
    map_: PanelSeries = {a: [] for a in ALGORITHMS}
    # MGP-U and MGP-B ignore |Omega| (no triplet learning), so their
    # per-split results are computed once and replicated across sizes.
    omega_independent = {"MGP-U", "MGP-B"}
    for algorithm in ALGORITHMS:
        if algorithm in omega_independent:
            results = [
                _evaluate_algorithm(
                    algorithm, runner, dataset_name, class_name,
                    config.omega_sizes[0], split, config.seed + i,
                )
                for i, split in enumerate(splits)
            ]
            pooled = average_results(results)
            for num_examples in config.omega_sizes:
                ndcg[algorithm].append((num_examples, pooled.ndcg))
                map_[algorithm].append((num_examples, pooled.map))
            continue
        for num_examples in config.omega_sizes:
            results = [
                _evaluate_algorithm(
                    algorithm, runner, dataset_name, class_name,
                    num_examples, split, config.seed + i,
                )
                for i, split in enumerate(splits)
            ]
            pooled = average_results(results)
            ndcg[algorithm].append((num_examples, pooled.ndcg))
            map_[algorithm].append((num_examples, pooled.map))
    return ndcg, map_


_panel_cache: dict[int, dict[str, tuple[PanelSeries, PanelSeries]]] = {}


def run(
    config: ExperimentConfig, runner: OfflineRunner | None = None
) -> dict[str, tuple[PanelSeries, PanelSeries]]:
    """All four panels: {dataset/class: (ndcg series, map series)}.

    Results are memoised per runner so that rendering Fig. 6 and Fig. 7
    (two views of the same computation) costs one pass.
    """
    runner = runner or OfflineRunner(config)
    cached = _panel_cache.get(id(runner))
    if cached is not None:
        return cached
    panels = {}
    for dataset_name, class_name in dataset_class_pairs(runner):
        panels[f"{dataset_name}/{class_name}"] = run_panel(
            runner, dataset_name, class_name
        )
    _panel_cache[id(runner)] = panels
    return panels


def main(config: ExperimentConfig, runner: OfflineRunner | None = None,
         metric: str = "both") -> str:
    """Render Fig. 6 and/or Fig. 7."""
    panels = run(config, runner)
    blocks = []
    for panel_name, (ndcg, map_) in panels.items():
        if metric in ("ndcg", "both"):
            blocks.append(
                format_series(
                    ndcg, x_label="|Omega|", y_label="NDCG@10",
                    title=f"Fig. 6 ({panel_name})",
                )
            )
        if metric in ("map", "both"):
            blocks.append(
                format_series(
                    map_, x_label="|Omega|", y_label="MAP@10",
                    title=f"Fig. 7 ({panel_name})",
                )
            )
    return "\n\n".join(blocks)
