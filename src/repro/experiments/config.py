"""Experiment configuration: scaled-down defaults with paper-scale knobs.

The paper's testbed (65k-node LinkedIn, C++ matcher, 3.7 GHz machine) is
substituted by pure-Python on synthetic graphs, so default sizes target
minutes per experiment.  Every knob is explicit; ``--scale`` presets map
to dataset sizes, and per-dataset mining support keeps catalog sizes in
a realistic ratio (Facebook's 10 types yield several times more
metagraphs than LinkedIn's 4, as in Table II).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mining.grami import MinerConfig


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiments."""

    scale: str = "small"
    max_nodes: int = 5
    linkedin_min_support: int = 8
    facebook_min_support: int = 8
    # the kinded (labeled, directed) reaction-network dataset is far
    # sparser per edge kind than the social graphs, so its support
    # threshold sits lower
    reactions_min_support: int = 2
    num_splits: int = 3
    omega_sizes: tuple[int, ...] = (10, 100, 1000)
    eval_k: int = 10
    trainer_restarts: int = 3
    trainer_max_iterations: int = 600
    srw_epochs: int = 15
    srw_power_iterations: int = 30
    seed: int = 0
    # offline index build: worker processes for the matching phase
    # (1 = sequential reference path; results are identical either way)
    index_workers: int = 1
    # matching engine for the offline build (see repro.matching.MATCHERS;
    # every engine produces bit-identical counts — this picks speed only)
    matcher: str = "compiled"
    # Fig. 8 / Fig. 10 candidate sweeps, per dataset
    candidate_sweep: dict[str, tuple[int, ...]] = field(
        default_factory=lambda: {
            "linkedin": (5, 10, 20),
            "facebook": (20, 60, 120),
            "reactions": (3, 6, 10),
        }
    )
    # Fig. 11: how many metagraphs to time per size bucket, and how many
    # repeats per (engine, metagraph) timing — best-of-N suppresses
    # scheduler noise so the engine comparison is stable
    fig11_per_size: int = 8
    fig11_repeats: int = 3
    # Fig. 9: cap on metagraph pairs scored (None = all pairs)
    fig9_max_pairs: int | None = 20000

    def miner_config(self, dataset_name: str) -> MinerConfig:
        """The mining configuration for one dataset."""
        if dataset_name == "linkedin":
            support = self.linkedin_min_support
        elif dataset_name == "reactions":
            support = self.reactions_min_support
        else:
            support = self.facebook_min_support
        return MinerConfig(max_nodes=self.max_nodes, min_support=support)


QUICK_CONFIG = ExperimentConfig(
    scale="tiny",
    max_nodes=4,
    linkedin_min_support=3,
    facebook_min_support=3,
    num_splits=2,
    omega_sizes=(10, 50),
    trainer_restarts=2,
    trainer_max_iterations=250,
    srw_epochs=6,
    srw_power_iterations=20,
    candidate_sweep={"linkedin": (2, 5), "facebook": (5, 15), "reactions": (2, 4)},
    fig11_per_size=4,
    fig9_max_pairs=3000,
)
"""A minutes-not-hours preset used by --quick and the benchmarks."""
