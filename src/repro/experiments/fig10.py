"""Fig. 10: candidate heuristic (CH) vs reverse candidate heuristic (RCH).

For each (dataset, class), sweep |K| and train on the seeds plus the
top-|K| candidates by H (CH) or the bottom-|K| (RCH); report test NDCG
and MAP.  Shape to reproduce: CH consistently above RCH — the heuristic
order is meaningful.
"""

from __future__ import annotations

from repro.experiments.common import (
    dataset_class_pairs,
    evaluate_weights,
    splits_for,
    triplets_for_split,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.experiments.runner import OfflineRunner
from repro.learning.dual_stage import candidate_heuristic_scores, select_candidates


def run_class(
    runner: OfflineRunner, dataset_name: str, class_name: str
) -> list[dict]:
    """Fig. 10 rows for one (dataset, class)."""
    config = runner.config
    phase = runner.offline(dataset_name)
    dataset = phase.dataset
    vectors = phase.vectors
    split = splits_for(dataset, class_name, 1, config.seed)[0]
    triplets = triplets_for_split(
        dataset, class_name, split, max(config.omega_sizes), config.seed
    )
    trainer = runner.trainer()
    seed_ids = list(phase.catalog.metapath_ids())
    w_seeds = trainer.train(triplets, vectors, active_ids=seed_ids)
    scores = candidate_heuristic_scores(phase.catalog, seed_ids, w_seeds)

    rows = []
    for num_candidates in config.candidate_sweep[dataset_name]:
        row: dict[str, object] = {
            "dataset": dataset_name,
            "class": class_name,
            "|K|": num_candidates,
        }
        for label, reverse in (("CH", False), ("RCH", True)):
            chosen = select_candidates(scores, num_candidates, reverse=reverse)
            active = sorted(set(seed_ids) | set(chosen))
            weights = trainer.train(triplets, vectors, active_ids=active)
            result = evaluate_weights(
                weights, vectors, dataset, class_name, split.test, config.eval_k
            )
            row[f"{label} NDCG"] = round(result.ndcg, 4)
            row[f"{label} MAP"] = round(result.map, 4)
        rows.append(row)
    return rows


def run(config: ExperimentConfig, runner: OfflineRunner | None = None) -> list[dict]:
    """All Fig. 10 rows."""
    runner = runner or OfflineRunner(config)
    rows: list[dict] = []
    for dataset_name, class_name in dataset_class_pairs(runner):
        rows.extend(run_class(runner, dataset_name, class_name))
    return rows


def main(config: ExperimentConfig, runner: OfflineRunner | None = None) -> str:
    """Render Fig. 10."""
    return format_table(
        run(config, runner),
        title="Fig. 10: candidate heuristic (CH) vs reversed (RCH) "
        "(CH expected to dominate)",
    )
