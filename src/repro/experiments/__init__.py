"""Experiment harness: one module per table/figure of the paper."""

from repro.experiments import (
    fig4,
    fig6_7,
    fig8,
    fig9,
    fig10,
    fig11,
    table2,
    table3,
)
from repro.experiments.config import QUICK_CONFIG, ExperimentConfig
from repro.experiments.runner import OfflinePhase, OfflineRunner

EXPERIMENTS = {
    "table2": table2.main,
    "table3": table3.main,
    "fig4": fig4.main,
    "fig6": lambda config, runner=None: fig6_7.main(config, runner, metric="ndcg"),
    "fig7": lambda config, runner=None: fig6_7.main(config, runner, metric="map"),
    "fig6_7": fig6_7.main,
    "fig8": fig8.main,
    "fig9": fig9.main,
    "fig10": fig10.main,
    "fig11": fig11.main,
}
"""Experiment name -> renderer, used by the CLI."""

__all__ = [
    "EXPERIMENTS",
    "ExperimentConfig",
    "OfflinePhase",
    "OfflineRunner",
    "QUICK_CONFIG",
]
