"""Shared offline-phase runner with in-process caching.

Several experiments need the same expensive artefacts — the dataset, the
mined catalog, and the full metagraph vectors.  :class:`OfflineRunner`
computes them once per (dataset, config) and hands out the cached copy,
recording the per-subproblem wall-clock costs that Table III reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.datasets import LabeledGraphDataset, load_dataset
from repro.experiments.config import ExperimentConfig
from repro.index.instance_index import InstanceIndex
from repro.index.parallel import IndexBuildConfig, build_index
from repro.index.vectors import MetagraphVectors
from repro.learning.trainer import Trainer, TrainerConfig
from repro.metagraph.catalog import MetagraphCatalog
from repro.mining import build_catalog
from repro.mining.grami import GramiMiner


@dataclass
class OfflinePhase:
    """Everything the offline phase of Fig. 3 produces, plus timings."""

    dataset: LabeledGraphDataset
    catalog: MetagraphCatalog
    vectors: MetagraphVectors
    index: InstanceIndex
    mining_seconds: float
    matching_seconds: float
    per_metagraph_seconds: dict[int, float] = field(default_factory=dict)


class OfflineRunner:
    """Caches offline phases per dataset within one process."""

    def __init__(self, config: ExperimentConfig):
        self.config = config
        self._cache: dict[str, OfflinePhase] = {}

    def trainer(self, seed: int | None = None) -> Trainer:
        """A Trainer matching the experiment configuration."""
        return Trainer(
            TrainerConfig(
                restarts=self.config.trainer_restarts,
                max_iterations=self.config.trainer_max_iterations,
                seed=self.config.seed if seed is None else seed,
            )
        )

    def dataset(self, name: str) -> LabeledGraphDataset:
        """The (cached) dataset at the configured scale."""
        return self.offline(name).dataset

    def offline(self, name: str) -> OfflinePhase:
        """Dataset + catalog + fully matched vectors, computed once."""
        if name in self._cache:
            return self._cache[name]
        dataset = load_dataset(name, scale=self.config.scale)
        miner_config = self.config.miner_config(name)
        start = time.perf_counter()
        mining = GramiMiner(miner_config).mine(dataset.graph)
        catalog = build_catalog(
            mining.patterns,
            anchor_type=dataset.anchor_type,
            max_nodes=miner_config.max_nodes,
        )
        mining_seconds = time.perf_counter() - start
        per_mg: dict[int, float] = {}
        start = time.perf_counter()
        vectors, index = build_index(
            dataset.graph,
            catalog,
            config=IndexBuildConfig(
                workers=self.config.index_workers,
                matcher=self.config.matcher,
            ),
            on_metagraph=lambda mg_id, sec: per_mg.__setitem__(mg_id, sec),
        )
        matching_seconds = time.perf_counter() - start
        phase = OfflinePhase(
            dataset=dataset,
            catalog=catalog,
            vectors=vectors,
            index=index,
            mining_seconds=mining_seconds,
            matching_seconds=matching_seconds,
            per_metagraph_seconds=per_mg,
        )
        self._cache[name] = phase
        return phase
