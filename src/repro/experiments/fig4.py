"""Fig. 4: sparsity of optimal characteristic weights.

Train on *all* metagraphs for each of the four (dataset, class)
combinations, rank the learned weights in descending order, and show
the long tail: a small proportion of high weights (> 0.9) and an
overwhelming majority of insignificant ones (< 0.1).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    dataset_class_pairs,
    splits_for,
    triplets_for_split,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.experiments.runner import OfflineRunner


def train_full_weights(
    runner: OfflineRunner,
    dataset_name: str,
    class_name: str,
    num_examples: int = 1000,
) -> np.ndarray:
    """Optimal weights over all metagraphs for one class (first split)."""
    config = runner.config
    phase = runner.offline(dataset_name)
    split = splits_for(phase.dataset, class_name, 1, config.seed)[0]
    triplets = triplets_for_split(
        phase.dataset, class_name, split, num_examples, config.seed
    )
    return runner.trainer().train(triplets, phase.vectors)


def run(config: ExperimentConfig, runner: OfflineRunner | None = None) -> list[dict]:
    """Weight-sparsity summary rows per (dataset, class)."""
    runner = runner or OfflineRunner(config)
    rows = []
    for dataset_name, class_name in dataset_class_pairs(runner):
        weights = train_full_weights(runner, dataset_name, class_name)
        ranked = np.sort(weights)[::-1]
        rows.append(
            {
                "dataset": dataset_name,
                "class": class_name,
                "|M|": len(ranked),
                "#w>0.9": int(np.sum(ranked > 0.9)),
                "#w>0.5": int(np.sum(ranked > 0.5)),
                "#w<0.1": int(np.sum(ranked < 0.1)),
                "top-5 weights": np.round(ranked[:5], 3).tolist(),
                "median w": float(np.median(ranked)),
            }
        )
    return rows


def ranked_weight_series(
    config: ExperimentConfig, runner: OfflineRunner | None = None
) -> dict[str, list[tuple[int, float]]]:
    """The raw Fig. 4 curves: (rank position, weight) per class."""
    runner = runner or OfflineRunner(config)
    series: dict[str, list[tuple[int, float]]] = {}
    for dataset_name, class_name in dataset_class_pairs(runner):
        weights = train_full_weights(runner, dataset_name, class_name)
        ranked = np.sort(weights)[::-1]
        series[f"{dataset_name}/{class_name}"] = [
            (i + 1, float(w)) for i, w in enumerate(ranked)
        ]
    return series


def main(config: ExperimentConfig, runner: OfflineRunner | None = None) -> str:
    """Render the Fig. 4 sparsity summary."""
    return format_table(
        run(config, runner),
        title="Fig. 4: sparsity of optimal characteristic weights "
        "(long tail expected: few large, most < 0.1)",
    )
