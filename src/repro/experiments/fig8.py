"""Fig. 8: impact of dual-stage training.

For each (dataset, class): anchor the accuracy (NDCG/MAP) of
seed-metagraphs-only at 0% and of all-metagraphs at 100%; likewise
anchor matching time.  Sweep the number of candidates |K| and report the
relative percentage increase of accuracy and time.

Shape to reproduce: accuracy approaches 100% at small |K| while time
stays far below 100% (the paper reports ~83% overall matching-time
reduction at ~1% accuracy loss).

Implementation note: candidates are ranked once by the heuristic H
(Eq. 7, from seed weights), then the sweep walks prefixes of that
ranking, extending the vector store incrementally — so the sweep's cost
equals one dual-stage run at the largest |K|.  Matching time per
metagraph is taken from the full offline phase's per-metagraph record,
keeping the time axis consistent with the "all metagraphs" anchor.
"""

from __future__ import annotations

from repro.experiments.common import (
    dataset_class_pairs,
    evaluate_weights,
    splits_for,
    triplets_for_split,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.experiments.runner import OfflineRunner
from repro.learning.dual_stage import candidate_heuristic_scores, select_candidates


def run_class(
    runner: OfflineRunner, dataset_name: str, class_name: str
) -> list[dict]:
    """Fig. 8 rows (one per |K| point, plus the 0 and `all` anchors)."""
    config = runner.config
    phase = runner.offline(dataset_name)
    dataset = phase.dataset
    vectors = phase.vectors  # fully matched: prefixes just restrict ids
    split = splits_for(dataset, class_name, 1, config.seed)[0]
    triplets = triplets_for_split(
        dataset, class_name, split, max(config.omega_sizes), config.seed
    )
    trainer = runner.trainer()
    seed_ids = list(phase.catalog.metapath_ids())
    per_mg = phase.per_metagraph_seconds
    seed_time = sum(per_mg[i] for i in seed_ids)
    all_time = sum(per_mg.values())

    # seed-only anchor (|K| = 0)
    w_seeds = trainer.train(triplets, vectors, active_ids=seed_ids)
    seed_eval = evaluate_weights(
        w_seeds, vectors, dataset, class_name, split.test, config.eval_k
    )
    # all-metagraphs anchor
    w_all = trainer.train(triplets, vectors)
    all_eval = evaluate_weights(
        w_all, vectors, dataset, class_name, split.test, config.eval_k
    )

    scores = candidate_heuristic_scores(phase.catalog, seed_ids, w_seeds)
    ordering = select_candidates(scores, len(scores))

    def relative(value: float, low: float, high: float) -> float:
        if high == low:
            return 1.0
        return (value - low) / (high - low)

    rows = [
        {
            "dataset": dataset_name,
            "class": class_name,
            "|K|": 0,
            "NDCG incr": "0%",
            "MAP incr": "0%",
            "Time incr": "0%",
        }
    ]
    for num_candidates in config.candidate_sweep[dataset_name]:
        chosen = ordering[:num_candidates]
        active = sorted(set(seed_ids) | set(chosen))
        weights = trainer.train(triplets, vectors, active_ids=active)
        result = evaluate_weights(
            weights, vectors, dataset, class_name, split.test, config.eval_k
        )
        k_time = seed_time + sum(per_mg[i] for i in chosen)
        rows.append(
            {
                "dataset": dataset_name,
                "class": class_name,
                "|K|": num_candidates,
                "NDCG incr": f"{relative(result.ndcg, seed_eval.ndcg, all_eval.ndcg) * 100:.0f}%",
                "MAP incr": f"{relative(result.map, seed_eval.map, all_eval.map) * 100:.0f}%",
                "Time incr": f"{relative(k_time, seed_time, all_time) * 100:.0f}%",
            }
        )
    rows.append(
        {
            "dataset": dataset_name,
            "class": class_name,
            "|K|": "all",
            "NDCG incr": "100%",
            "MAP incr": "100%",
            "Time incr": "100%",
        }
    )
    return rows


def run(config: ExperimentConfig, runner: OfflineRunner | None = None) -> list[dict]:
    """All Fig. 8 rows across the four (dataset, class) panels."""
    runner = runner or OfflineRunner(config)
    rows: list[dict] = []
    for dataset_name, class_name in dataset_class_pairs(runner):
        rows.extend(run_class(runner, dataset_name, class_name))
    return rows


def main(config: ExperimentConfig, runner: OfflineRunner | None = None) -> str:
    """Render Fig. 8."""
    return format_table(
        run(config, runner),
        title="Fig. 8: dual-stage training — relative increase vs seeds-only "
        "(0%) and all-metagraphs (100%)",
    )
