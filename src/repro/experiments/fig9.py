"""Fig. 9: correlation of structural and functional similarities.

Using weights learned on all metagraphs (no dual stage), compute for
every metagraph pair the structural similarity SS (MCS-based) and the
functional similarity FS = 1 - |w_i - w_j|; bin pairs by SS into
[0,.2) .. [.8,1) and report the mean FS per bin and class.

Shape to reproduce: mean FS increases with the SS bin — the foundation
of the candidate heuristic.
"""

from __future__ import annotations

import itertools
import random

from repro.experiments.config import ExperimentConfig
from repro.experiments.common import dataset_class_pairs
from repro.experiments.fig4 import train_full_weights
from repro.experiments.reporting import format_table
from repro.experiments.runner import OfflineRunner
from repro.metagraph.similarity import functional_similarity, structural_similarity

BINS = ((0.0, 0.2), (0.2, 0.4), (0.4, 0.6), (0.6, 0.8), (0.8, 1.0))


def _bin_of(value: float) -> int:
    for b, (low, high) in enumerate(BINS):
        if low <= value < high:
            return b
    return len(BINS) - 1  # SS == 1.0 joins the top bin


def run_class(
    runner: OfflineRunner, dataset_name: str, class_name: str
) -> dict:
    """One Fig. 9 bar group: mean FS per SS bin for one class."""
    config = runner.config
    phase = runner.offline(dataset_name)
    weights = train_full_weights(runner, dataset_name, class_name)
    catalog = phase.catalog
    pairs = list(itertools.combinations(catalog.ids(), 2))
    if config.fig9_max_pairs is not None and len(pairs) > config.fig9_max_pairs:
        rng = random.Random(config.seed)
        pairs = rng.sample(pairs, config.fig9_max_pairs)
    totals = [0.0] * len(BINS)
    counts = [0] * len(BINS)
    for i, j in pairs:
        ss = structural_similarity(catalog[i], catalog[j])
        fs = functional_similarity(float(weights[i]), float(weights[j]))
        b = _bin_of(ss)
        totals[b] += fs
        counts[b] += 1
    row: dict[str, object] = {"dataset": dataset_name, "class": class_name}
    for b, (low, high) in enumerate(BINS):
        label = f"SS [{low:.1f},{high:.1f})"
        row[label] = round(totals[b] / counts[b], 3) if counts[b] else "n/a"
    return row


def run(config: ExperimentConfig, runner: OfflineRunner | None = None) -> list[dict]:
    """Fig. 9 rows for the four (dataset, class) combinations."""
    runner = runner or OfflineRunner(config)
    return [
        run_class(runner, dataset_name, class_name)
        for dataset_name, class_name in dataset_class_pairs(runner)
    ]


def main(config: ExperimentConfig, runner: OfflineRunner | None = None) -> str:
    """Render Fig. 9."""
    return format_table(
        run(config, runner),
        title="Fig. 9: mean pairwise functional similarity per structural-"
        "similarity bin (expected to rise with SS)",
    )
