"""Table III: time costs without dual-stage training (seconds).

Paper's columns: offline mining (GRAMI), offline matching, training with
1000 examples, online testing per query.  The paper's point — matching
dominates the offline phase by at least an order of magnitude, while
online testing is sub-millisecond — is the shape to reproduce.
"""

from __future__ import annotations

import time

from repro.experiments.common import splits_for, triplets_for_split
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.experiments.runner import OfflineRunner
from repro.learning.model import ProximityModel


def run(config: ExperimentConfig, runner: OfflineRunner | None = None) -> list[dict]:
    """Compute the Table III rows for both datasets."""
    runner = runner or OfflineRunner(config)
    rows = []
    for name in ("linkedin", "facebook"):
        phase = runner.offline(name)
        dataset = phase.dataset
        class_name = dataset.classes[0]
        split = splits_for(dataset, class_name, 1, config.seed)[0]
        triplets = triplets_for_split(
            dataset, class_name, split, num_examples=1000, seed=config.seed
        )
        start = time.perf_counter()
        weights = runner.trainer().train(triplets, phase.vectors)
        training_seconds = time.perf_counter() - start

        model = ProximityModel(weights, phase.vectors)
        test_queries = split.test
        start = time.perf_counter()
        for q in test_queries:
            model.rank(q, universe=dataset.universe, k=config.eval_k)
        testing_seconds = (time.perf_counter() - start) / max(1, len(test_queries))

        rows.append(
            {
                "dataset": name,
                "Mining (s)": round(phase.mining_seconds, 2),
                "Matching (s)": round(phase.matching_seconds, 2),
                "Training w/ 1000 ex. (s)": round(training_seconds, 2),
                "Testing per query (s)": f"{testing_seconds:.2e}",
                "Matching/Mining ratio": round(
                    phase.matching_seconds / max(phase.mining_seconds, 1e-9), 1
                ),
            }
        )
    return rows


def main(config: ExperimentConfig, runner: OfflineRunner | None = None) -> str:
    """Render Table III."""
    return format_table(
        run(config, runner),
        title="Table III: time costs without dual-stage training",
    )
