"""Plain-text report formatting shared by all experiments.

The paper reports tables (Table II/III) and line/bar series (Fig. 4,
6–11).  Experiments return structured rows/series; this module renders
them as aligned text tables so every experiment regenerates "the same
rows the paper reports" on stdout.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

Row = Mapping[str, object]


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(rows: Sequence[Row], title: str = "") -> str:
    """Render rows (dicts sharing keys) as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {
        col: max(len(col), *(len(_cell(row.get(col, ""))) for row in rows))
        for col in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[col] for col in columns))
    for row in rows:
        lines.append(
            " | ".join(_cell(row.get(col, "")).ljust(widths[col]) for col in columns)
        )
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[tuple[object, float]]],
    x_label: str,
    y_label: str,
    title: str = "",
) -> str:
    """Render named (x, y) series as a table with one column per series.

    This is the text rendering of the paper's line figures: the x axis
    down the rows, one series (algorithm) per column.
    """
    xs: list[object] = []
    for points in series.values():
        for x, _y in points:
            if x not in xs:
                xs.append(x)
    rows: list[dict[str, object]] = []
    for x in xs:
        row: dict[str, object] = {x_label: x}
        for name, points in series.items():
            lookup = {px: py for px, py in points}
            if x in lookup:
                row[name] = lookup[x]
        rows.append(row)
    heading = f"{title}  [{y_label}]" if title else f"[{y_label}]"
    return format_table(rows, title=heading)


def percent(value: float) -> str:
    """Format a ratio as a signed percentage string."""
    return f"{value * 100:+.1f}%"
