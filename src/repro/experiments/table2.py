"""Table II: description of datasets.

Paper's columns: #Nodes, #Edges, #Types, #Metagraphs, #Queries per
class.  Paper values (for shape comparison; our datasets are synthetic
and smaller): LinkedIn 65 925 / 220 812 / 4 / 164 / 172+173;
Facebook 5 025 / 100 356 / 10 / 954 / 340+904.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.experiments.runner import OfflineRunner


def run(config: ExperimentConfig, runner: OfflineRunner | None = None) -> list[dict]:
    """Compute the Table II rows for both datasets."""
    runner = runner or OfflineRunner(config)
    rows = []
    for name in ("linkedin", "facebook"):
        phase = runner.offline(name)
        dataset = phase.dataset
        row: dict[str, object] = {
            "dataset": name,
            "#Nodes": dataset.graph.num_nodes,
            "#Edges": dataset.graph.num_edges,
            "#Types": len(dataset.graph.types),
            "#Metagraphs": len(phase.catalog),
            "#Metapaths": len(phase.catalog.metapath_ids()),
        }
        for class_name in dataset.classes:
            row[f"#Queries ({class_name})"] = len(dataset.queries(class_name))
        rows.append(row)
    return rows


def main(config: ExperimentConfig, runner: OfflineRunner | None = None) -> str:
    """Render Table II."""
    return format_table(run(config, runner), title="Table II: dataset description")
