"""Helpers shared by the accuracy experiments (Fig. 6–8, 10)."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.datasets import LabeledGraphDataset
from repro.eval.harness import EvalResult, evaluate_ranker, model_ranker
from repro.eval.splits import QuerySplit, split_queries
from repro.graph.typed_graph import NodeId
from repro.index.vectors import MetagraphVectors
from repro.learning.examples import generate_triplets
from repro.learning.model import ProximityModel
from repro.learning.objective import Triplet


def splits_for(
    dataset: LabeledGraphDataset,
    class_name: str,
    num_splits: int,
    seed: int,
) -> list[QuerySplit]:
    """The paper's 20/80 splits for one dataset+class."""
    return split_queries(
        dataset.queries(class_name),
        train_fraction=0.2,
        num_splits=num_splits,
        seed=seed,
    )


def triplets_for_split(
    dataset: LabeledGraphDataset,
    class_name: str,
    split: QuerySplit,
    num_examples: int,
    seed: int,
) -> list[Triplet]:
    """Omega sampled from one split's training queries."""
    return generate_triplets(
        split.train,
        dataset.class_labels(class_name),
        dataset.universe,
        num_examples=num_examples,
        seed=seed,
    )


def evaluate_weights(
    weights: np.ndarray,
    vectors: MetagraphVectors,
    dataset: LabeledGraphDataset,
    class_name: str,
    test_queries: Sequence[NodeId],
    k: int = 10,
) -> EvalResult:
    """NDCG/MAP of an MGP weight vector on one split's test queries."""
    model = ProximityModel(weights, vectors)
    return evaluate_ranker(
        model_ranker(model, dataset.universe),
        test_queries,
        dataset.class_labels(class_name),
        k=k,
    )


def dataset_class_pairs(runner) -> list[tuple[str, str]]:
    """The paper's four (dataset, class) combinations, in Fig. 6 order."""
    pairs = []
    for name in ("linkedin", "facebook"):
        dataset = runner.dataset(name)
        pairs.extend((name, class_name) for class_name in dataset.classes)
    return pairs
