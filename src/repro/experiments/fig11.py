"""Fig. 11: average matching time per metagraph, by metagraph size.

Compares the five engines — SymISO, SymISO-R, BoostISO, TurboISO,
QuickSI — on metagraphs of 3, 4 and 5 nodes drawn from each dataset's
catalog.  Timing covers the full instance computation (embedding
enumeration plus instance deduplication), matching the paper's "time
per metagraph".

Shape to reproduce: SymISO fastest (paper: 52% below the best baseline
on average, with the margin growing with metagraph size) and clearly
faster than SymISO-R (the matching order matters, ~45%).
"""

from __future__ import annotations

import time

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.experiments.runner import OfflineRunner
from repro.matching import ALL_ENGINES
from repro.matching.base import deduplicate_instances

ENGINE_ORDER = ("SymISO", "SymISO-R", "BoostISO", "TurboISO", "QuickSI")


def _sample_by_size(catalog, per_size: int) -> dict[int, list[int]]:
    """Up to ``per_size`` metagraph ids per node-count bucket (3..5)."""
    buckets: dict[int, list[int]] = {}
    for mg_id in catalog.ids():
        size = catalog[mg_id].size
        bucket = buckets.setdefault(size, [])
        if len(bucket) < per_size:
            bucket.append(mg_id)
    return {size: ids for size, ids in sorted(buckets.items()) if size >= 3}


def time_engine(engine_name: str, graph, metagraph) -> tuple[float, int]:
    """(seconds, |I(M)|) for one engine on one metagraph."""
    engine = ALL_ENGINES[engine_name]()
    start = time.perf_counter()
    count = sum(
        1 for _ in deduplicate_instances(engine.find_embeddings(graph, metagraph))
    )
    return time.perf_counter() - start, count


def run_dataset(runner: OfflineRunner, dataset_name: str) -> list[dict]:
    """Fig. 11 rows (per size bucket) for one dataset."""
    config = runner.config
    phase = runner.offline(dataset_name)
    graph = phase.dataset.graph
    samples = _sample_by_size(phase.catalog, config.fig11_per_size)
    rows = []
    for size, mg_ids in samples.items():
        row: dict[str, object] = {
            "dataset": dataset_name,
            "|V_M|": size,
            "#metagraphs": len(mg_ids),
        }
        counts: dict[str, list[int]] = {}
        for engine_name in ENGINE_ORDER:
            total = 0.0
            counts[engine_name] = []
            for mg_id in mg_ids:
                seconds, count = time_engine(
                    engine_name, graph, phase.catalog[mg_id]
                )
                total += seconds
                counts[engine_name].append(count)
            row[f"{engine_name} (ms)"] = round(1000 * total / len(mg_ids), 2)
        # engines must agree on |I(M)| — a cheap cross-check in the report
        reference = counts["QuickSI"]
        row["engines agree"] = all(c == reference for c in counts.values())
        rows.append(row)
    return rows


def run(config: ExperimentConfig, runner: OfflineRunner | None = None) -> list[dict]:
    """All Fig. 11 rows."""
    runner = runner or OfflineRunner(config)
    rows: list[dict] = []
    for dataset_name in ("linkedin", "facebook"):
        rows.extend(run_dataset(runner, dataset_name))
    return rows


def main(config: ExperimentConfig, runner: OfflineRunner | None = None) -> str:
    """Render Fig. 11."""
    return format_table(
        run(config, runner),
        title="Fig. 11: average matching time per metagraph "
        "(SymISO expected fastest; gap grows with |V_M|)",
    )
