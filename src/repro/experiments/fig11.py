"""Fig. 11: average matching time per metagraph, by metagraph size.

Compares the five engines — SymISO, SymISO-R, BoostISO, TurboISO,
QuickSI — on metagraphs of 3, 4 and 5 nodes drawn from each dataset's
catalog.  Timing covers the full instance computation (embedding
enumeration plus instance deduplication), matching the paper's "time
per metagraph".

Shape to reproduce: SymISO fastest (paper: 52% below the best baseline
on average, with the margin growing with metagraph size) and clearly
faster than SymISO-R (the matching order matters, ~45%).
"""

from __future__ import annotations

import time

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.experiments.runner import OfflineRunner
from repro.matching import ALL_ENGINES
from repro.matching.base import deduplicate_instances

ENGINE_ORDER = ("SymISO", "SymISO-R", "BoostISO", "TurboISO", "QuickSI")


def _sample_by_size(catalog, per_size: int) -> dict[int, list[int]]:
    """Up to ``per_size`` metagraph ids per node-count bucket (3..5)."""
    buckets: dict[int, list[int]] = {}
    for mg_id in catalog.ids():
        size = catalog[mg_id].size
        bucket = buckets.setdefault(size, [])
        if len(bucket) < per_size:
            bucket.append(mg_id)
    return {size: ids for size, ids in sorted(buckets.items()) if size >= 3}


def time_engine(
    engine_name: str, graph, metagraph, repeats: int = 1
) -> tuple[float, int]:
    """(best-of-``repeats`` seconds, |I(M)|) for one engine on one metagraph.

    Wall-clock noise only ever *adds* time, so the minimum over repeats
    is the most faithful estimate of an engine's cost.
    """
    engine = ALL_ENGINES[engine_name]()
    best = float("inf")
    count = 0
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        count = sum(
            1
            for _ in deduplicate_instances(
                engine.find_embeddings(graph, metagraph)
            )
        )
        best = min(best, time.perf_counter() - start)
    return best, count


def run_dataset(runner: OfflineRunner, dataset_name: str) -> list[dict]:
    """Fig. 11 rows (per size bucket) for one dataset."""
    config = runner.config
    phase = runner.offline(dataset_name)
    graph = phase.dataset.graph
    samples = _sample_by_size(phase.catalog, config.fig11_per_size)
    rows = []
    for size, mg_ids in samples.items():
        row: dict[str, object] = {
            "dataset": dataset_name,
            "|V_M|": size,
            "#metagraphs": len(mg_ids),
        }
        counts: dict[str, list[int]] = {}
        per_metagraph_ms: dict[str, list[float]] = {}
        for engine_name in ENGINE_ORDER:
            counts[engine_name] = []
            per_metagraph_ms[engine_name] = []
            for mg_id in mg_ids:
                seconds, count = time_engine(
                    engine_name,
                    graph,
                    phase.catalog[mg_id],
                    repeats=config.fig11_repeats,
                )
                per_metagraph_ms[engine_name].append(1000 * seconds)
                counts[engine_name].append(count)
            row[f"{engine_name} (ms)"] = round(
                sum(per_metagraph_ms[engine_name]) / len(mg_ids), 2
            )
        # engines must agree on |I(M)| — a cheap cross-check in the report
        reference = counts["QuickSI"]
        row["engines agree"] = all(c == reference for c in counts.values())
        # raw per-metagraph timings (underscore keys are dropped from the
        # rendered table) so acceptance checks can compare robust medians
        row["_per_metagraph_ms"] = per_metagraph_ms
        rows.append(row)
    return rows


def run(config: ExperimentConfig, runner: OfflineRunner | None = None) -> list[dict]:
    """All Fig. 11 rows."""
    runner = runner or OfflineRunner(config)
    rows: list[dict] = []
    for dataset_name in ("linkedin", "facebook"):
        rows.extend(run_dataset(runner, dataset_name))
    return rows


def main(config: ExperimentConfig, runner: OfflineRunner | None = None) -> str:
    """Render Fig. 11."""
    rows = [
        {k: v for k, v in row.items() if not k.startswith("_")}
        for row in run(config, runner)
    ]
    return format_table(
        rows,
        title="Fig. 11: average matching time per metagraph "
        "(SymISO expected fastest; gap grows with |V_M|)",
    )
