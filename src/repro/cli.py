"""Command-line entry point: regenerate any table or figure.

Usage::

    python -m repro table2 --quick
    python -m repro fig6 --scale small --splits 3
    python -m repro all --quick

``--quick`` switches to the tiny preset (minutes); the default ``small``
scale is the one EXPERIMENTS.md records.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time

from repro.experiments import EXPERIMENTS, QUICK_CONFIG, ExperimentConfig, OfflineRunner


def build_parser() -> argparse.ArgumentParser:
    """The `python -m repro` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Semantic Proximity Search on Graphs with "
            "Metagraph-based Learning' (ICDE 2016): regenerate any table "
            "or figure of the evaluation section."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[*sorted(EXPERIMENTS), "all"],
        help="which table/figure to regenerate ('all' runs everything)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny datasets and reduced sweeps (fast smoke run)",
    )
    parser.add_argument(
        "--scale",
        choices=["tiny", "small", "medium"],
        default=None,
        help="dataset scale preset (default: small, or tiny with --quick)",
    )
    parser.add_argument(
        "--splits", type=int, default=None, help="number of query splits"
    )
    parser.add_argument("--seed", type=int, default=None, help="global seed")
    return parser


def config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    """Resolve CLI flags into an ExperimentConfig."""
    config = QUICK_CONFIG if args.quick else ExperimentConfig()
    overrides = {}
    if args.scale is not None:
        overrides["scale"] = args.scale
    if args.splits is not None:
        overrides["num_splits"] = args.splits
    if args.seed is not None:
        overrides["seed"] = args.seed
    return dataclasses.replace(config, **overrides) if overrides else config


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    config = config_from_args(args)
    runner = OfflineRunner(config)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        start = time.perf_counter()
        output = EXPERIMENTS[name](config, runner)
        elapsed = time.perf_counter() - start
        print(output)
        print(f"[{name} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
