"""Command-line entry point: regenerate tables/figures, serve, or index.

Usage::

    python -m repro table2 --quick
    python -m repro fig6 --scale small --splits 3
    python -m repro all --quick
    python -m repro serve --quick --queries u1,u2 --k 5
    python -m repro serve --quick --shards 4 --workers 4
    python -m repro serve --quick --shards 4 --backend process --replicas 2
    python -m repro serve --quick --snapshot idx/ --mmap
    python -m repro serve --quick --snapshot idx/ --listen 127.0.0.1:8766 --watch
    python -m repro index build --dataset linkedin --out idx/ --workers 4
    python -m repro index info idx/
    python -m repro index update idx/ --dataset linkedin --edits edits.json
    python -m repro shard-worker --snapshot idx/ --shard 0 --num-shards 4 \
        --socket /tmp/shard0.sock

``--quick`` switches to the tiny preset (minutes); the default ``small``
scale is the one EXPERIMENTS.md records.  ``serve`` runs the online
phase end to end — offline build (or ``--snapshot`` cold start,
optionally ``--mmap``'d), training, then batched ranking through the
compiled scoring backend (``--scalar`` for the reference path;
``--backend process`` for supervised shard-worker processes) — and
prints rankings plus throughput.  ``index build`` runs the offline
phase (optionally on a worker pool) and persists a versioned snapshot;
``index info`` verifies and describes one.  ``shard-worker`` is the
standalone shard serving process the ``process`` backend supervises
(usable by hand for multi-host topologies).
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from pathlib import Path

from repro.experiments import EXPERIMENTS, QUICK_CONFIG, ExperimentConfig, OfflineRunner
from repro.learning.examples import generate_triplets
from repro.learning.model import ProximityModel, SortedUniverse


def build_parser() -> argparse.ArgumentParser:
    """The `python -m repro` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Semantic Proximity Search on Graphs with "
            "Metagraph-based Learning' (ICDE 2016): regenerate any table "
            "or figure of the evaluation section.  See also `repro index "
            "build|info` for persistent offline index snapshots."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[
            *sorted(EXPERIMENTS), "all", "serve", "index", "lint",
            "shard-worker",
        ],
        help=(
            "which table/figure to regenerate ('all' runs everything; "
            "'serve' runs the online phase as a batched query service; "
            "'index' manages snapshots — see `repro index --help`; "
            "'lint' runs the invariant-analysis suite — see `repro lint "
            "--help`; 'shard-worker' serves one shard of a snapshot over "
            "a socket — see `repro shard-worker --help`)"
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny datasets and reduced sweeps (fast smoke run)",
    )
    parser.add_argument(
        "--scale",
        choices=["tiny", "small", "medium"],
        default=None,
        help="dataset scale preset (default: small, or tiny with --quick)",
    )
    parser.add_argument(
        "--splits", type=int, default=None, help="number of query splits"
    )
    parser.add_argument("--seed", type=int, default=None, help="global seed")
    parser.add_argument(
        "--matcher",
        choices=_matcher_names(),
        default=None,
        help="matching engine for the offline build (default: compiled; "
        "every engine produces identical counts)",
    )
    # serve-only options default to None sentinels (resolved by
    # run_serve) so main() can reject any explicit use — even of a
    # default value — on non-serve experiments; declaring through
    # serve_arg records each flag so new ones are covered automatically
    serving = parser.add_argument_group("serve options")
    serve_only: list[tuple[str, str]] = []

    def serve_arg(flag: str, **kwargs) -> None:
        action = serving.add_argument(flag, default=None, **kwargs)
        serve_only.append((action.dest, flag))

    serve_arg(
        "--dataset",
        choices=["linkedin", "facebook"],
        help="dataset to serve (serve only; default: linkedin)",
    )
    serve_arg(
        "--class",
        dest="class_name",
        help="semantic class to fit and serve (default: first class)",
    )
    serve_arg(
        "--queries",
        help="comma-separated query node ids (default: sampled labelled queries)",
    )
    serve_arg(
        "--num-queries",
        type=int,
        help="how many labelled queries to serve when --queries is unset "
        "(default: 8)",
    )
    serve_arg("--k", type=int, help="results per query (default: 5)")
    serve_arg(
        "--scalar",
        action="store_true",
        help="serve through the scalar reference path instead of the "
        "compiled CSR backend",
    )
    serve_arg(
        "--shards",
        type=int,
        help="partition the compiled universe into this many node-range "
        "shards and serve through the shard router (default: 1 = "
        "unsharded; rankings are bit-identical for every value)",
    )
    serve_arg(
        "--workers",
        type=int,
        help="router worker threads a query batch fans out over "
        "(default: 1; only meaningful with --shards > 1)",
    )
    serve_arg(
        "--backend",
        choices=["thread", "process"],
        help="where shard scoring runs: in this process ('thread', "
        "default) or in supervised shard-worker processes that mmap "
        "their slice from a snapshot and answer over the serving wire "
        "protocol ('process'; rankings are bit-identical)",
    )
    serve_arg(
        "--replicas",
        type=int,
        help="worker processes per shard with --backend process "
        "(default: REPRO_SERVING_REPLICAS or 1); requests fail over "
        "between replicas when a worker dies",
    )
    serve_arg(
        "--snapshot",
        help="serve from this index snapshot directory (cold start: no "
        "mining or matching; classes the snapshot carries serve "
        "immediately)",
    )
    serve_arg(
        "--mmap",
        action="store_true",
        help="memory-map the --snapshot's compiled sidecar instead of "
        "loading a copy (near-zero cold start; pages shared across "
        "co-hosted processes)",
    )
    serve_arg(
        "--listen",
        metavar="HOST:PORT",
        help="run a long-lived HTTP query frontend instead of a one-shot "
        "batch: /query, /reload, /stats, /health; requires --snapshot "
        "(the server serves a persisted index)",
    )
    serve_arg(
        "--max-batch",
        type=int,
        help="frontend: flush a coalesced batch at this many queries "
        "(default: REPRO_FRONTEND_MAX_BATCH or 32)",
    )
    serve_arg(
        "--max-delay-ms",
        type=float,
        help="frontend: flush a coalesced batch after its oldest query "
        "waited this long (default: REPRO_FRONTEND_MAX_DELAY_MS or 2.0)",
    )
    serve_arg(
        "--cache-size",
        type=int,
        help="frontend: LRU result-cache capacity; 0 disables caching "
        "(default: REPRO_FRONTEND_CACHE_SIZE or 4096)",
    )
    serve_arg(
        "--cache-ttl",
        type=float,
        help="frontend: seconds a cached ranking stays servable "
        "(default: REPRO_FRONTEND_CACHE_TTL, else no expiry)",
    )
    serve_arg(
        "--watch",
        action="store_true",
        help="frontend: poll the --snapshot directory and hot-reload "
        "(zero downtime) whenever its digest changes",
    )
    parser.serve_only_options = serve_only
    return parser


def _matcher_names() -> list[str]:
    from repro.matching import MATCHERS

    return sorted(MATCHERS)


def config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    """Resolve CLI flags into an ExperimentConfig."""
    config = QUICK_CONFIG if args.quick else ExperimentConfig()
    overrides = {}
    if args.scale is not None:
        overrides["scale"] = args.scale
    if args.splits is not None:
        overrides["num_splits"] = args.splits
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.matcher is not None:
        overrides["matcher"] = args.matcher
    return dataclasses.replace(config, **overrides) if overrides else config


def run_serve(args: argparse.Namespace, config: ExperimentConfig) -> int:
    """The ``serve`` subcommand: offline build, fit, batched ranking."""
    # validate --class against a cheap tiny-scale load before paying for
    # the full offline build (classes are scale-independent)
    from repro.datasets import load_dataset
    from repro.exceptions import QueryError
    from repro.serving import QueryRouter, validate_query_node

    # resolve the None sentinels build_parser uses for serve-only flags
    dataset_name = args.dataset or "linkedin"
    num_queries = 8 if args.num_queries is None else args.num_queries
    top_k = 5 if args.k is None else args.k
    shards = 1 if args.shards is None else args.shards
    workers = 1 if args.workers is None else args.workers
    backend_name = args.backend or "thread"
    if num_queries < 0:
        print(
            f"--num-queries must be >= 0, got {num_queries}",
            file=sys.stderr,
        )
        return 2
    if top_k <= 0:
        print(f"--k must be >= 1, got {top_k}", file=sys.stderr)
        return 2
    if shards < 1:
        print(f"--shards must be >= 1, got {shards}", file=sys.stderr)
        return 2
    if workers < 1:
        print(f"--workers must be >= 1, got {workers}", file=sys.stderr)
        return 2
    if args.scalar and shards > 1:
        print(
            "--scalar serves the uncompiled reference path; it cannot be "
            "combined with --shards",
            file=sys.stderr,
        )
        return 2
    if args.scalar and backend_name == "process":
        print(
            "--scalar serves the uncompiled reference path; it cannot be "
            "combined with --backend process",
            file=sys.stderr,
        )
        return 2
    if args.replicas is not None and backend_name != "process":
        print(
            "--replicas only applies with --backend process",
            file=sys.stderr,
        )
        return 2
    if args.replicas is not None and args.replicas < 1:
        print(f"--replicas must be >= 1, got {args.replicas}", file=sys.stderr)
        return 2
    if args.mmap and args.snapshot is None:
        print(
            "--mmap memory-maps a snapshot's compiled sidecar; it "
            "requires --snapshot",
            file=sys.stderr,
        )
        return 2
    frontend_flags = [
        flag
        for flag, value in (
            ("--max-batch", args.max_batch),
            ("--max-delay-ms", args.max_delay_ms),
            ("--cache-size", args.cache_size),
            ("--cache-ttl", args.cache_ttl),
            ("--watch", args.watch),
        )
        if value is not None
    ]
    if args.listen is None and frontend_flags:
        print(
            f"option(s) {frontend_flags} configure the HTTP frontend; "
            "they require --listen",
            file=sys.stderr,
        )
        return 2
    if args.listen is not None:
        if args.snapshot is None:
            print(
                "--listen serves a persisted index long-lived; it "
                "requires --snapshot (build one with `repro index build`)",
                file=sys.stderr,
            )
            return 2
        from repro.serving.frontend import parse_listen

        try:
            parse_listen(args.listen)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    classes = load_dataset(dataset_name, scale="tiny").classes
    class_name = args.class_name or classes[0]
    if class_name not in classes:
        print(
            f"unknown class {class_name!r}; available: {list(classes)}",
            file=sys.stderr,
        )
        return 2
    if args.snapshot is not None:
        return _serve_from_snapshot(
            args,
            config,
            dataset_name,
            class_name,
            num_queries=num_queries,
            top_k=top_k,
            shards=shards,
            workers=workers,
            backend_name=backend_name,
        )
    runner = OfflineRunner(config)
    phase = runner.offline(dataset_name)
    dataset = phase.dataset
    if class_name not in dataset.classes:  # exact check at serving scale
        print(
            f"class {class_name!r} missing at scale {config.scale!r}; "
            f"available: {list(dataset.classes)}",
            file=sys.stderr,
        )
        return 2
    universe = SortedUniverse(dataset.universe)
    # resolve and validate the query batch before paying for training
    if args.queries is not None:
        queries = [q.strip() for q in args.queries.split(",") if q.strip()]
        if not queries:
            print(
                f"--queries {args.queries!r} contains no query ids",
                file=sys.stderr,
            )
            return 2
        try:
            for query in queries:
                validate_query_node(dataset.graph, query, dataset.anchor_type)
        except QueryError as exc:
            print(f"cannot serve this batch: {exc}", file=sys.stderr)
            return 2
    else:
        queries = list(dataset.queries(class_name))[:num_queries]
    labels = dataset.class_labels(class_name)
    triplets = generate_triplets(
        dataset.queries(class_name),
        labels,
        dataset.universe,
        num_examples=200,
        seed=config.seed,
    )
    weights = runner.trainer().train(triplets, phase.vectors)
    model = ProximityModel(weights, phase.vectors, name=class_name)
    backend = "scalar"
    router = None
    snapshot_tmp = None
    if not args.scalar:
        model.compile()
        backend = "compiled"
    if shards > 1 or backend_name == "process":
        if backend_name == "process":
            # process workers mmap their slice from disk, so persist the
            # just-built index into a run-scoped snapshot first
            import tempfile
            from pathlib import Path

            from repro.index.persist import save_index
            from repro.serving import SubprocessBackend

            snapshot_tmp = tempfile.TemporaryDirectory(
                prefix="repro-serve-snapshot-"
            )
            snapshot_path = save_index(
                Path(snapshot_tmp.name) / "snapshot",
                phase.vectors,
                phase.catalog,
                graph=dataset.graph,
                index=phase.index,
            )
            shard_backend = SubprocessBackend(
                snapshot_path, shards, replicas=args.replicas
            )
            backend = (
                f"sharded ({shards} shards, {workers} workers, "
                f"{shard_backend.replicas} process replica(s)/shard)"
            )
        else:
            from repro.serving import InProcessBackend, ShardedVectors

            shard_backend = InProcessBackend(
                ShardedVectors.partition(phase.vectors.compile(), shards)
            )
            backend = f"sharded ({shards} shards, {workers} workers)"
        router = QueryRouter(shard_backend, workers=workers)
    start = time.perf_counter()
    try:
        if router is not None:
            rankings = router.rank_many(model, queries, universe=universe, k=top_k)
        else:
            rankings = [model.rank(q, universe=universe, k=top_k) for q in queries]
    except QueryError as exc:
        # the batch was validated above, so this is unreachable in
        # practice — but a clean message beats a traceback if a new
        # serving path ever skips validation
        print(f"cannot serve this batch: {exc}", file=sys.stderr)
        return 2
    finally:
        if router is not None:
            router.close()
        if snapshot_tmp is not None:
            snapshot_tmp.cleanup()
    elapsed = time.perf_counter() - start
    print(
        f"[serve] {dataset_name}/{class_name!r}: {len(queries)} queries, "
        f"{backend} backend, k={top_k}"
    )
    for query, ranking in zip(queries, rankings):
        shown = ", ".join(f"{node} ({score:.3f})" for node, score in ranking)
        print(f"  {query} -> {shown or '(no results)'}")
    per_query = elapsed / max(len(queries), 1) * 1e3
    print(
        f"[serve] ranked {len(queries)} queries in {elapsed * 1e3:.2f} ms "
        f"({per_query:.3f} ms/query, universe={len(universe)})"
    )
    return 0


def _serve_from_snapshot(
    args: argparse.Namespace,
    config: ExperimentConfig,
    dataset_name: str,
    class_name: str,
    *,
    num_queries: int,
    top_k: int,
    shards: int,
    workers: int,
    backend_name: str,
) -> int:
    """``serve --snapshot``: cold-start the facade from a saved index.

    No mining, no matching: the snapshot's counts (and, with ``--mmap``,
    its memory-mapped compiled sidecar) back serving directly.  Classes
    the snapshot carries serve as restored; a missing class is fitted
    from the dataset's labels, exactly like the offline-build path.
    """
    from repro.datasets import load_dataset
    from repro.exceptions import QueryError, SnapshotError
    from repro.learning.trainer import TrainerConfig
    from repro.search import SemanticProximitySearch
    from repro.serving import validate_query_node

    dataset = load_dataset(dataset_name, scale=config.scale)
    if class_name not in dataset.classes:
        print(
            f"class {class_name!r} missing at scale {config.scale!r}; "
            f"available: {list(dataset.classes)}",
            file=sys.stderr,
        )
        return 2
    mmap = bool(args.mmap)
    trainer_config = TrainerConfig(
        restarts=config.trainer_restarts,
        max_iterations=config.trainer_max_iterations,
        seed=config.seed,
    )
    try:
        engine = SemanticProximitySearch.from_index(
            args.snapshot,
            dataset.graph,
            trainer_config=trainer_config,
            shards=shards,
            serving_workers=workers,
            serving_backend=backend_name,
            replicas=args.replicas,
            mmap=mmap,
        )
    except SnapshotError as exc:
        print(
            f"[serve] cannot serve from snapshot {args.snapshot}: {exc}",
            file=sys.stderr,
        )
        return 1
    try:
        if args.queries is not None:
            queries = [q.strip() for q in args.queries.split(",") if q.strip()]
            if not queries:
                print(
                    f"--queries {args.queries!r} contains no query ids",
                    file=sys.stderr,
                )
                return 2
            try:
                for query in queries:
                    validate_query_node(
                        dataset.graph, query, dataset.anchor_type
                    )
            except QueryError as exc:
                print(f"cannot serve this batch: {exc}", file=sys.stderr)
                return 2
        else:
            queries = list(dataset.queries(class_name))[:num_queries]
        restored = class_name in engine.classes
        if not restored:
            engine.fit(
                class_name,
                labels=dataset.class_labels(class_name),
                num_examples=200,
                seed=config.seed,
            )
        if args.listen is not None:
            from repro.serving.frontend import FrontendConfig

            frontend_config = FrontendConfig.from_env(
                max_batch=args.max_batch,
                max_delay_ms=args.max_delay_ms,
                cache_size=args.cache_size,
                cache_ttl=args.cache_ttl,
            )
            print(
                f"[serve] {dataset_name}/{class_name!r}: listening on "
                f"{args.listen} (digest {engine.serving_digest()[:12]}…, "
                f"max_batch={frontend_config.max_batch}, "
                f"max_delay_ms={frontend_config.max_delay_ms}, "
                f"cache_size={frontend_config.cache_size}, "
                f"watch={'on' if args.watch else 'off'})"
            )
            try:
                engine.serve_forever(
                    listen=args.listen,
                    config=frontend_config,
                    watch=args.snapshot if args.watch else None,
                )
            except KeyboardInterrupt:
                print("[serve] interrupted; shutting down")
            return 0
        sidecar = "mmap" if mmap else "loaded"
        if shards > 1 or backend_name == "process":
            backend = (
                f"sharded ({shards} shards, {workers} workers, "
                f"{backend_name}) over {sidecar} snapshot"
            )
        else:
            backend = f"compiled over {sidecar} snapshot"
        start = time.perf_counter()
        try:
            rankings = engine.query_many(class_name, queries, k=top_k)
        except QueryError as exc:
            print(f"cannot serve this batch: {exc}", file=sys.stderr)
            return 2
        elapsed = time.perf_counter() - start
        universe_size = len(engine.universe())
    finally:
        engine.close()
    print(
        f"[serve] {dataset_name}/{class_name!r}: {len(queries)} queries, "
        f"{backend} backend, k={top_k} "
        f"(class {'restored from snapshot' if restored else 'fitted'})"
    )
    for query, ranking in zip(queries, rankings):
        shown = ", ".join(f"{node} ({score:.3f})" for node, score in ranking)
        print(f"  {query} -> {shown or '(no results)'}")
    per_query = elapsed / max(len(queries), 1) * 1e3
    print(
        f"[serve] ranked {len(queries)} queries in {elapsed * 1e3:.2f} ms "
        f"({per_query:.3f} ms/query, universe={universe_size})"
    )
    return 0


def build_index_parser() -> argparse.ArgumentParser:
    """The `python -m repro index` argument parser."""
    from repro.datasets import DATASET_GENERATORS

    dataset_names = sorted(DATASET_GENERATORS)
    parser = argparse.ArgumentParser(
        prog="repro index",
        description=(
            "Build, persist, inspect and incrementally update offline "
            "index snapshots (catalog + Eq. 1-2 counts + fitted classes)."
        ),
    )
    actions = parser.add_subparsers(dest="action", required=True)
    build = actions.add_parser(
        "build", help="run the offline phase and persist a snapshot"
    )
    build.add_argument(
        "--dataset",
        choices=dataset_names,
        default="linkedin",
        help="dataset to index (default: linkedin)",
    )
    build.add_argument(
        "--scale",
        choices=["tiny", "small", "medium"],
        default="tiny",
        help="dataset scale preset (default: tiny)",
    )
    build.add_argument(
        "--out", required=True, help="snapshot directory to write"
    )
    build.add_argument(
        "--workers",
        type=int,
        default=1,
        help="matching worker processes (default: 1 = sequential)",
    )
    build.add_argument(
        "--matcher",
        choices=_matcher_names(),
        default="compiled",
        help="matching engine (default: compiled; counts are identical "
        "for every engine, only speed differs)",
    )
    build.add_argument(
        "--max-nodes", type=int, default=4, help="largest mined pattern size"
    )
    build.add_argument(
        "--min-support", type=int, default=3, help="MNI support threshold"
    )
    info = actions.add_parser(
        "info", help="verify a snapshot and print its manifest summary"
    )
    info.add_argument("path", help="snapshot directory")
    update = actions.add_parser(
        "update",
        help="apply graph edits to a snapshot incrementally (no rebuild)",
        description=(
            "Replay the snapshot's recorded update log onto the base "
            "dataset graph, apply the new edits with delta index "
            "maintenance, and write the snapshot back with an extended "
            "log and bumped graph fingerprint."
        ),
    )
    update.add_argument("path", help="snapshot directory to update in place")
    update.add_argument(
        "--dataset",
        choices=dataset_names,
        default=None,
        help="base dataset the snapshot was built from (default: the "
        "dataset recorded in the snapshot manifest, else linkedin)",
    )
    update.add_argument(
        "--scale",
        choices=["tiny", "small", "medium"],
        default=None,
        help="dataset scale preset (default: the scale recorded in the "
        "snapshot manifest, else tiny)",
    )
    group = update.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--edits",
        help="JSON file with a list of edit records, e.g. "
        '[{"op": "add_edge", "u": "u1", "v": "s0"}, ...]',
    )
    group.add_argument(
        "--toggle-edges",
        type=int,
        metavar="N",
        help="demo/bench mode: remove then re-add N existing edges",
    )
    update.add_argument(
        "--seed", type=int, default=0, help="--toggle-edges sampling seed"
    )
    return parser


def run_index_update(args) -> int:
    """The ``index update`` verb: delta-maintain a snapshot in place."""
    import json
    import random
    import shutil
    from pathlib import Path

    from repro.datasets import load_dataset
    from repro.exceptions import ReproError
    from repro.index import (
        GraphDelta,
        apply_delta,
        load_index,
        read_manifest,
        save_index,
    )

    try:
        manifest = read_manifest(args.path)
    except ReproError as exc:
        print(f"[index] cannot update {args.path}: {exc}", file=sys.stderr)
        return 1
    # `index build` records its base dataset/scale in the manifest; the
    # flags only need repeating when that provenance is absent
    recorded = manifest.get("extra", {})
    dataset_name = args.dataset or recorded.get("dataset") or "linkedin"
    scale = args.scale or recorded.get("scale") or "tiny"
    dataset = load_dataset(dataset_name, scale=scale)
    graph = dataset.graph
    try:
        replayed = GraphDelta.from_json_list(manifest.get("update_log", []))
        # reconstruct the graph the snapshot describes: base dataset
        # graph + the snapshot's recorded update log
        replayed.apply_to(graph)
        # mmap=False: the update path patches the raw counts and
        # re-derives the sidecar on save, so opening the mmap arrays
        # would only hold file handles into the directory being swapped
        loaded = load_index(args.path, graph=graph, mmap=False)
    except ReproError as exc:
        print(f"[index] cannot update {args.path}: {exc}", file=sys.stderr)
        return 1
    if replayed:
        print(f"[index] replayed {len(replayed)} logged edit(s) onto the base graph")
    if args.edits is not None:
        try:
            docs = json.loads(Path(args.edits).read_text(encoding="utf-8"))
            delta = GraphDelta.from_json_list(docs)
        except (OSError, ValueError, ReproError) as exc:
            print(f"[index] unreadable edits file {args.edits}: {exc}", file=sys.stderr)
            return 2
    else:
        if not 1 <= args.toggle_edges <= graph.num_edges:
            print(
                f"--toggle-edges must be between 1 and the graph's "
                f"{graph.num_edges} edges, got {args.toggle_edges}",
                file=sys.stderr,
            )
            return 2
        rng = random.Random(args.seed)
        sample = rng.sample(sorted(graph.edges(), key=repr), args.toggle_edges)
        delta = GraphDelta()
        for u, v in sample:
            # re-add with the original kind and orientation; edges()
            # yields sorted pairs, not source-first
            kind = graph.edge_kind(u, v)
            if kind.directed and graph.edge_signature(u, v)[1] == -1:
                u, v = v, u
            delta.remove_edge(u, v)
            delta.add_edge(u, v, kind)
    # snapshots saved without per-metagraph |I(M)| totals cannot have
    # them patched (reconstruction would start every total at 0 and go
    # negative on the first retirement); the vectors still update, and
    # the rewritten snapshot stays totals-free like the original
    instance_index = loaded.instance_index() if loaded.instance_totals else None
    applied_log: list[dict] = []
    start = time.perf_counter()
    try:
        stats = apply_delta(
            graph,
            loaded.catalog,
            loaded.vectors,
            delta,
            index=instance_index,
            on_edit=lambda edit: applied_log.append(edit.to_json_dict()),
        )
    except ReproError as exc:
        print(f"[index] update failed: {exc}", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - start
    # write the new snapshot next to the old one and swap directories,
    # so a crash mid-rewrite never leaves the only copy half-written
    target = Path(args.path)
    staging = target.with_name(target.name + ".updating")
    backup = target.with_name(target.name + ".bak")
    shutil.rmtree(staging, ignore_errors=True)
    save_index(
        staging,
        loaded.vectors,
        loaded.catalog,
        graph=graph,
        index=instance_index,
        models=loaded.models,
        extra=recorded or None,
        update_log=manifest.get("update_log", []) + applied_log,
    )
    shutil.rmtree(backup, ignore_errors=True)
    target.rename(backup)
    staging.rename(target)
    shutil.rmtree(backup)
    print(
        f"[index] applied {stats.edits_applied} edit(s) "
        f"({stats.edits_noop} no-ops) in {elapsed * 1e3:.1f} ms: "
        f"-{stats.instances_retired}/+{stats.instances_added} instances "
        f"across {len(stats.metagraphs_touched)} metagraph(s)"
    )
    print(
        f"[index] snapshot at {target} rewritten: update log now "
        f"{len(manifest.get('update_log', [])) + len(applied_log)} edit(s), "
        "graph fingerprint re-stamped"
    )
    return 0


def run_index(argv: list[str]) -> int:
    """The ``index`` subcommand family: build, inspect, update snapshots."""
    from repro.datasets import load_dataset
    from repro.exceptions import SnapshotError
    from repro.index import IndexBuildConfig, build_index, load_index, save_index
    from repro.mining import MinerConfig, mine_catalog

    args = build_index_parser().parse_args(argv)
    if args.action == "update":
        return run_index_update(args)
    if args.action == "info":
        from repro.index import load_compiled

        try:
            # mmap=False: info is the verification tool, so skip the
            # mmap fast path and hash the sidecar in full below instead
            # of opening it twice
            loaded = load_index(args.path, mmap=False)
        except SnapshotError as exc:
            print(f"[index] invalid snapshot at {args.path}: {exc}", file=sys.stderr)
            return 1
        # the sidecar is derived data — its loss degrades the mmap fast
        # path (load_index falls back to the counts), it does not
        # invalidate the snapshot, so report it rather than failing
        sidecar = sidecar_problem = None
        if loaded.manifest.get("compiled_arrays"):
            try:
                sidecar = load_compiled(
                    args.path, manifest=loaded.manifest, mmap=False
                )
            except SnapshotError as exc:
                sidecar_problem = str(exc)
        manifest = loaded.manifest
        stats = manifest["stats"]
        print(f"[index] snapshot at {args.path} (verified)")
        print(f"  format version : {manifest['format_version']}")
        if sidecar is not None:
            print(
                f"  mmap sidecar   : {len(manifest['compiled_arrays'])} "
                f"members, {sidecar.num_nodes} nodes, {sidecar.nnz} "
                "nonzeros (digests verified)"
            )
        elif sidecar_problem is not None:
            print(
                "  mmap sidecar   : UNUSABLE — serving falls back to the "
                f"counts ({sidecar_problem})"
            )
        else:
            print("  mmap sidecar   : (none — format v1 snapshot)")
        print(f"  anchor type    : {manifest['anchor_type']}")
        schema = manifest.get("schema")
        if schema:
            print(
                "  schema         : edge kinds on, types "
                f"{', '.join(schema.get('types', []))}"
            )
            for a, b, label, directed in schema.get("edge_rules", []):
                arrow = "->" if directed else "--"
                shown = label or "(plain)"
                print(f"    {a} {arrow} {b} [{shown}]")
        else:
            print("  schema         : plain (unlabeled, undirected)")
        print(f"  metagraphs     : {manifest['catalog_size']}")
        print(
            f"  counts         : {stats['num_nodes']} nodes, "
            f"{stats['num_pairs']} pairs, "
            f"{stats['node_nnz'] + stats['pair_nnz']} nonzeros"
        )
        print(f"  transform      : {manifest['transform']}")
        print(f"  graph          : {manifest['graph_fingerprint']}")
        print(f"  catalog sha256 : {manifest['catalog_sha256']}")
        print(f"  classes        : {manifest['models'] or '(none fitted)'}")
        for key, value in sorted(manifest.get("extra", {}).items()):
            print(f"  {key:<15}: {value}")
        return 0

    if args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    dataset = load_dataset(args.dataset, scale=args.scale)
    print(f"[index] building over {dataset.graph!r}")
    miner_config = MinerConfig(max_nodes=args.max_nodes, min_support=args.min_support)
    start = time.perf_counter()
    catalog = mine_catalog(
        dataset.graph, miner_config, anchor_type=dataset.anchor_type
    )
    mining_s = time.perf_counter() - start
    print(f"[index] mined {len(catalog)} metagraphs in {mining_s:.1f}s")
    start = time.perf_counter()
    vectors, index = build_index(
        dataset.graph,
        catalog,
        config=IndexBuildConfig(workers=args.workers, matcher=args.matcher),
    )
    matching_s = time.perf_counter() - start
    print(
        f"[index] matched {len(index)} metagraphs in {matching_s:.1f}s "
        f"({args.workers} worker(s), {args.matcher} matcher)"
    )
    target = save_index(
        args.out,
        vectors,
        catalog,
        graph=dataset.graph,
        index=index,
        extra={
            "dataset": args.dataset,
            "scale": args.scale,
            "workers": args.workers,
            "matcher": args.matcher,
            "miner_config": miner_config.to_json_dict(),
        },
    )
    total = sum(f.stat().st_size for f in target.iterdir())
    print(f"[index] snapshot written to {target} ({total / 1024:.1f} KiB)")
    return 0


def build_lint_parser() -> argparse.ArgumentParser:
    """Parser for the ``repro lint`` static-analysis verb."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "run the repository's invariant-analysis suite (determinism, "
            "lock discipline, resource lifecycle, wire-error taxonomy, "
            "API hygiene) over python sources"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="also write the report to this file",
    )
    parser.add_argument(
        "--rules",
        metavar="RULE[,RULE...]",
        default=None,
        help="comma-separated subset of rule ids to run",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def run_lint_cli(argv: list[str]) -> int:
    """``repro lint``: exit 0 clean, 1 findings/errors, 2 usage."""
    # lean import path, mirroring `shard-worker`: the analysis suite
    # must stay importable without the experiments stack
    from repro.analysis import all_checkers, format_json, format_text, run_lint

    parser = build_lint_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule, cls in sorted(all_checkers().items()):
            print(f"{rule}: {cls.description}")
        return 0
    rules = None
    if args.rules is not None:
        rules = [rule.strip() for rule in args.rules.split(",") if rule.strip()]
    try:
        report = run_lint(args.paths, rules=rules, root=Path.cwd())
    except ValueError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    rendered = (
        format_json(report) if args.format == "json" else format_text(report)
    )
    print(rendered)
    if args.output is not None:
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
    return 0 if report.clean else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "index":
        return run_index(argv[1:])
    if argv and argv[0] == "lint":
        return run_lint_cli(argv[1:])
    if argv and argv[0] == "shard-worker":
        # lean import path: the worker process must not pay for the
        # experiments stack it never uses
        from repro.serving.worker import main as worker_main

        return worker_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.experiment in ("index", "lint", "shard-worker"):
        # reachable when flags precede the command ("--quick index"):
        # these families have their own parsers and flag sets
        print(
            f"the {args.experiment!r} command takes its own options; "
            f"invoke it as `repro {args.experiment} ...` with nothing "
            "before it",
            file=sys.stderr,
        )
        return 2
    config = config_from_args(args)
    if args.experiment == "serve":
        return run_serve(args, config)
    # the flat parser accepts serve flags everywhere; reject them on
    # experiment runs instead of silently ignoring them (any non-None
    # value means the flag was passed explicitly)
    misused = [
        flag
        for name, flag in parser.serve_only_options
        if getattr(args, name) is not None
    ]
    if misused:
        print(
            f"option(s) {sorted(misused)} only apply to the 'serve' "
            f"command, not {args.experiment!r}",
            file=sys.stderr,
        )
        return 2
    runner = OfflineRunner(config)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        start = time.perf_counter()
        output = EXPERIMENTS[name](config, runner)
        elapsed = time.perf_counter() - start
        print(output)
        print(f"[{name} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
