"""Facebook-like synthetic dataset (Table II, second row).

The paper's Facebook graph [6] has ten node types — ``user``, ``major``,
``degree``, ``school``, ``hometown``, ``surname``, ``location``,
``employer``, ``work-location``, ``work-project`` — and, lacking
explicit labels, the paper *generates* ground truth with rules:

- **family**: two users sharing the same surname AND the same location
  or hometown;
- **classmate**: two users sharing the same school AND the same degree
  or major;
- plus "a 5% chance to assign a random class label".

We synthesise the attribute graph (family units sharing surname and
mostly a home location/hometown; school cohorts sharing school and
mostly a degree/major; independent work teams) and then derive the
labels by applying the paper's *own rules to the realised graph*, with
the same 5% randomisation — so the task definition is identical to the
paper's, only the underlying crawl is synthetic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datasets.base import LabeledGraphDataset, symmetric_labels
from repro.datasets.synthetic import (
    attach_group_attribute,
    attach_noise_attributes,
    attach_pooled_attribute,
    pairs_sharing,
    partition_into_groups,
    perturb_pairs,
)
from repro.graph.builder import GraphBuilder
from repro.graph.schema import GraphSchema

FACEBOOK_TYPES = (
    "user",
    "major",
    "degree",
    "school",
    "hometown",
    "surname",
    "location",
    "employer",
    "work-location",
    "work-project",
)

FACEBOOK_SCHEMA = GraphSchema(
    types=FACEBOOK_TYPES,
    edge_pairs=[("user", t) for t in FACEBOOK_TYPES if t != "user"],
)


@dataclass(frozen=True)
class FacebookConfig:
    """Size and noise knobs for the Facebook-like generator."""

    num_users: int = 200
    family_size: tuple[int, int] = (2, 5)
    cohort_size: tuple[int, int] = (4, 9)
    team_size: tuple[int, int] = (3, 8)
    num_degrees: int = 8
    num_majors: int = 15
    users_per_surname: int = 8
    users_per_location: int = 15
    users_per_hometown: int = 12
    users_per_school: int = 25
    attach_probability: float = 0.9
    home_probability: float = 0.8
    noise_probability: float = 0.1
    label_flip_probability: float = 0.05
    seed: int = 13


#: Scale presets: tests use "tiny"; experiments default to "small".
FACEBOOK_SCALES = {
    "tiny": FacebookConfig(num_users=50),
    "small": FacebookConfig(num_users=200),
    "medium": FacebookConfig(num_users=500),
}


def generate_facebook(
    config: FacebookConfig | None = None, scale: str | None = None
) -> LabeledGraphDataset:
    """Generate the Facebook-like dataset with rule-derived labels."""
    if config is None:
        config = FACEBOOK_SCALES[scale or "small"]
    rng = random.Random(config.seed)
    builder = GraphBuilder(name="facebook", schema=FACEBOOK_SCHEMA)
    users = [f"u{i}" for i in range(config.num_users)]
    for user in users:
        builder.node(user, "user")

    # families: surname drawn from a COMMON pool (unrelated families can
    # share a surname), and a home location/hometown drawn from pooled
    # neighbourhoods/towns — so neither surname nor place identifies a
    # family alone; only their conjunction does (the paper's rule).
    families = partition_into_groups(users, *config.family_size, rng=rng)
    surnames = [f"surname{i}" for i in range(max(2, config.num_users // config.users_per_surname))]
    location_pool = [f"loc{i}" for i in range(max(2, config.num_users // config.users_per_location))]
    hometown_pool = [f"town{i}" for i in range(max(2, config.num_users // config.users_per_hometown))]
    attach_pooled_attribute(
        builder, families, "surname", surnames, rng,
        attach_probability=config.attach_probability,
    )
    attach_pooled_attribute(
        builder, families, "location", location_pool, rng,
        attach_probability=config.home_probability,
    )
    attach_pooled_attribute(
        builder, families, "hometown", hometown_pool, rng,
        attach_probability=config.home_probability,
    )

    # school cohorts draw their school from a pooled campus list (several
    # cohorts per school); degree/major come from small pools with
    # cohort-mates biased towards the same value
    cohorts = partition_into_groups(users, *config.cohort_size, rng=rng)
    school_pool = [f"school{i}" for i in range(max(2, config.num_users // config.users_per_school))]
    attach_pooled_attribute(
        builder, cohorts, "school", school_pool, rng,
        attach_probability=config.attach_probability,
    )
    degrees = [f"degree{i}" for i in range(config.num_degrees)]
    majors = [f"major{i}" for i in range(config.num_majors)]
    for value in degrees:
        builder.node(value, "degree")
    for value in majors:
        builder.node(value, "major")
    for cohort in cohorts:
        cohort_degree = rng.choice(degrees)
        cohort_major = rng.choice(majors)
        for member in cohort:
            degree = cohort_degree if rng.random() < 0.8 else rng.choice(degrees)
            major = cohort_major if rng.random() < 0.8 else rng.choice(majors)
            builder.edge(member, degree)
            builder.edge(member, major)

    # independent work structure (confounders for both classes)
    teams = partition_into_groups(users, *config.team_size, rng=rng)
    attach_group_attribute(
        builder, teams, "employer", "employer", rng,
        attach_probability=config.attach_probability,
    )
    attach_group_attribute(
        builder, teams, "work-location", "workloc", rng,
        attach_probability=config.home_probability,
    )
    attach_group_attribute(
        builder, teams, "work-project", "project", rng,
        attach_probability=config.home_probability,
    )

    # noise attributes
    attach_noise_attributes(builder, users, location_pool, config.noise_probability, rng)
    attach_noise_attributes(builder, users, hometown_pool, config.noise_probability, rng)

    graph = builder.build()

    # ground truth via the paper's rules on the realised graph
    family_pairs = pairs_sharing(
        graph, "user", "surname", ("location", "hometown")
    )
    classmate_pairs = pairs_sharing(
        graph, "user", "school", ("degree", "major")
    )
    family_pairs = perturb_pairs(
        family_pairs, users, config.label_flip_probability, rng
    )
    classmate_pairs = perturb_pairs(
        classmate_pairs, users, config.label_flip_probability, rng
    )
    labels = {
        "family": symmetric_labels(family_pairs),
        "classmate": symmetric_labels(classmate_pairs),
    }
    return LabeledGraphDataset(
        name="facebook", graph=graph, anchor_type="user", labels=labels
    )
