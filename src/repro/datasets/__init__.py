"""Datasets: the toy graph and the two synthetic HIN generators."""

from repro.datasets.base import (
    ClassLabels,
    LabeledGraphDataset,
    labels_as_pairs,
    symmetric_labels,
)
from repro.datasets.facebook import (
    FACEBOOK_SCALES,
    FACEBOOK_SCHEMA,
    FacebookConfig,
    generate_facebook,
)
from repro.datasets.linkedin import (
    LINKEDIN_SCALES,
    LINKEDIN_SCHEMA,
    LinkedInConfig,
    generate_linkedin,
)
from repro.datasets.reactions import (
    REACTIONS_SCALES,
    REACTIONS_SCHEMA,
    ReactionsConfig,
    generate_reactions,
)
from repro.datasets.toy import toy_dataset, toy_graph, toy_metagraphs

DATASET_GENERATORS = {
    "linkedin": generate_linkedin,
    "facebook": generate_facebook,
    "reactions": generate_reactions,
}
"""Name -> generator, used by the CLI and the experiment configs."""


def load_dataset(name: str, scale: str = "small") -> LabeledGraphDataset:
    """Generate a dataset by name at the given scale preset."""
    if name == "toy":
        return toy_dataset()
    try:
        generator = DATASET_GENERATORS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: "
            f"{['toy', *sorted(DATASET_GENERATORS)]}"
        ) from None
    return generator(scale=scale)


__all__ = [
    "ClassLabels",
    "DATASET_GENERATORS",
    "FACEBOOK_SCALES",
    "FACEBOOK_SCHEMA",
    "FacebookConfig",
    "LINKEDIN_SCALES",
    "LINKEDIN_SCHEMA",
    "LabeledGraphDataset",
    "LinkedInConfig",
    "REACTIONS_SCALES",
    "REACTIONS_SCHEMA",
    "ReactionsConfig",
    "generate_facebook",
    "generate_linkedin",
    "generate_reactions",
    "labels_as_pairs",
    "load_dataset",
    "symmetric_labels",
    "toy_dataset",
    "toy_graph",
    "toy_metagraphs",
]
