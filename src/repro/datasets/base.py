"""LabeledGraphDataset: a typed graph plus semantic-class ground truth.

A dataset bundles the object graph with, per semantic class, the
symmetric membership relation between anchor nodes: ``labels[class][q]``
is the set of nodes in the class w.r.t. ``q``.  Query nodes (Sect. V-A)
are anchor nodes with at least one same-class partner.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from repro.exceptions import DatasetError
from repro.graph.typed_graph import NodeId, TypedGraph

ClassLabels = dict[NodeId, frozenset[NodeId]]


@dataclass
class LabeledGraphDataset:
    """A heterogeneous graph with labelled semantic classes of proximity."""

    name: str
    graph: TypedGraph
    anchor_type: str
    labels: dict[str, ClassLabels] = field(default_factory=dict)

    def __post_init__(self) -> None:
        anchors = self.graph.nodes_of_type(self.anchor_type)
        if not anchors:
            raise DatasetError(
                f"graph has no nodes of anchor type {self.anchor_type!r}"
            )
        for class_name, class_labels in self.labels.items():
            for q, members in class_labels.items():
                if q not in anchors:
                    raise DatasetError(
                        f"label query {q!r} in class {class_name!r} is not "
                        f"an anchor node"
                    )
                if q in members:
                    raise DatasetError(
                        f"node {q!r} labelled as its own class member in "
                        f"{class_name!r}"
                    )

    @property
    def classes(self) -> tuple[str, ...]:
        """The semantic class names, sorted."""
        return tuple(sorted(self.labels))

    @property
    def universe(self) -> tuple[NodeId, ...]:
        """All anchor nodes, sorted — the ranking universe."""
        return tuple(sorted(self.graph.nodes_of_type(self.anchor_type), key=repr))

    def class_labels(self, class_name: str) -> ClassLabels:
        """Labels of one class; raises for unknown classes."""
        try:
            return self.labels[class_name]
        except KeyError:
            raise DatasetError(
                f"dataset {self.name!r} has no class {class_name!r}; "
                f"available: {list(self.classes)}"
            ) from None

    def queries(self, class_name: str) -> tuple[NodeId, ...]:
        """Query nodes of a class: anchors with >= 1 same-class partner."""
        class_labels = self.class_labels(class_name)
        return tuple(
            sorted(
                (q for q, members in class_labels.items() if members),
                key=repr,
            )
        )

    def describe(self) -> dict[str, object]:
        """Table II-style description row."""
        row: dict[str, object] = {
            "dataset": self.name,
            "#Nodes": self.graph.num_nodes,
            "#Edges": self.graph.num_edges,
            "#Types": len(self.graph.types),
        }
        for class_name in self.classes:
            row[f"#Queries ({class_name})"] = len(self.queries(class_name))
        return row


def symmetric_labels(pairs: Iterable[tuple[NodeId, NodeId]]) -> ClassLabels:
    """Build the symmetric membership map from unordered labelled pairs."""
    out: dict[NodeId, set[NodeId]] = {}
    for x, y in pairs:
        if x == y:
            raise DatasetError(f"self-pair {x!r} in class labels")
        out.setdefault(x, set()).add(y)
        out.setdefault(y, set()).add(x)
    return {node: frozenset(members) for node, members in out.items()}


def labels_as_pairs(class_labels: Mapping[NodeId, frozenset[NodeId]]) -> set[tuple[NodeId, NodeId]]:
    """The unordered labelled pairs of a class (inverse of symmetric_labels)."""
    pairs: set[tuple[NodeId, NodeId]] = set()
    for q, members in class_labels.items():
        for m in members:
            pairs.add((q, m) if repr(q) <= repr(m) else (m, q))
    return pairs
