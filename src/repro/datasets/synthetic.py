"""Shared machinery for the synthetic heterogeneous-graph generators.

The paper's two datasets are crawls that cannot be redistributed; the
generators in :mod:`repro.datasets.linkedin` and
:mod:`repro.datasets.facebook` synthesise graphs with the same type
schemas and the same causal structure: semantic classes are *planted* as
groups of users who share typed attribute values, plus noise edges that
blur the signal.  Everything is driven by an explicit seed.

Building blocks:

- :func:`partition_into_groups` — split users into disjoint groups of
  random sizes (a "cohort", "family", "team", ...);
- :func:`attach_group_attribute` — give each group its own attribute
  node and connect members with a given probability;
- :func:`attach_noise_attributes` — connect users to random attribute
  nodes of a type, diluting the planted signal.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.exceptions import DatasetError
from repro.graph.builder import GraphBuilder
from repro.graph.typed_graph import NodeId


def partition_into_groups(
    members: Sequence[NodeId],
    min_size: int,
    max_size: int,
    rng: random.Random,
) -> list[list[NodeId]]:
    """Shuffle and partition ``members`` into groups of random sizes."""
    if min_size < 1 or max_size < min_size:
        raise DatasetError(
            f"invalid group size range [{min_size}, {max_size}]"
        )
    pool = list(members)
    rng.shuffle(pool)
    groups: list[list[NodeId]] = []
    i = 0
    while i < len(pool):
        size = rng.randint(min_size, max_size)
        groups.append(pool[i : i + size])
        i += size
    return groups


def attach_group_attribute(
    builder: GraphBuilder,
    groups: Sequence[Sequence[NodeId]],
    attribute_type: str,
    prefix: str,
    rng: random.Random,
    attach_probability: float = 1.0,
) -> list[NodeId]:
    """One fresh attribute node per group; members attach with probability.

    Returns the attribute node id for each group (attribute nodes are
    created even if no member ends up attached — they are removed by
    nobody and simply stay isolated-from-users).
    """
    attribute_nodes: list[NodeId] = []
    for group_index, group in enumerate(groups):
        value = f"{prefix}{group_index}"
        builder.node(value, attribute_type)
        attribute_nodes.append(value)
        for member in group:
            if rng.random() < attach_probability:
                builder.edge(member, value)
    return attribute_nodes


def attach_pooled_attribute(
    builder: GraphBuilder,
    groups: Sequence[Sequence[NodeId]],
    attribute_type: str,
    pool: Sequence[NodeId],
    rng: random.Random,
    attach_probability: float = 1.0,
) -> list[NodeId]:
    """Each group draws its attribute from a shared pool (collisions OK).

    Unlike :func:`attach_group_attribute`, distinct groups can share a
    value — two unrelated families can both be "Smith", two cohorts can
    attend the same school.  This is what makes single attributes
    insufficient and conjunctions (the paper's metagraphs) necessary.
    Returns the value drawn per group.
    """
    for value in pool:
        builder.node(value, attribute_type)
    drawn: list[NodeId] = []
    for group in groups:
        value = rng.choice(list(pool))
        drawn.append(value)
        for member in group:
            if rng.random() < attach_probability and not builder.graph.has_edge(
                member, value
            ):
                builder.edge(member, value)
    return drawn


def attach_noise_attributes(
    builder: GraphBuilder,
    users: Sequence[NodeId],
    attribute_nodes: Sequence[NodeId],
    probability: float,
    rng: random.Random,
    max_extra: int = 1,
) -> None:
    """Connect users to random existing attribute nodes (confounders)."""
    if not attribute_nodes:
        return
    for user in users:
        for _ in range(max_extra):
            if rng.random() < probability:
                target = rng.choice(list(attribute_nodes))
                if not builder.graph.has_edge(user, target):
                    builder.edge(user, target)


def correlated_groups(
    members: Sequence[NodeId],
    home_of: dict[NodeId, NodeId],
    min_size: int,
    max_size: int,
    rng: random.Random,
    locality: float = 0.8,
) -> list[list[NodeId]]:
    """Partition ``members`` into groups biased towards a shared "home".

    Each group is seeded by a random member and then filled from that
    member's home community with probability ``locality`` (falling back
    to the global pool).  This is how real cohorts look: a college class
    mostly lives in the campus city, an office team mostly in one
    location — which is exactly the co-occurrence structure that makes
    conjunctive metagraphs (share college AND location) informative.
    """
    remaining = sorted(members, key=repr)
    rng.shuffle(remaining)
    remaining_set = set(remaining)
    groups: list[list[NodeId]] = []
    while remaining_set:
        seed = next(u for u in remaining if u in remaining_set)
        size = rng.randint(min_size, max_size)
        group = [seed]
        remaining_set.discard(seed)
        home = home_of[seed]
        local_pool = [
            u for u in remaining if u in remaining_set and home_of[u] == home
        ]
        while len(group) < size and remaining_set:
            take_local = local_pool and rng.random() < locality
            if take_local:
                pick = local_pool.pop(rng.randrange(len(local_pool)))
                if pick not in remaining_set:
                    continue
            else:
                candidates = [u for u in remaining if u in remaining_set]
                pick = rng.choice(candidates)
                if pick in local_pool:
                    local_pool.remove(pick)
            group.append(pick)
            remaining_set.discard(pick)
        groups.append(group)
    return groups


def pairs_sharing(
    graph,
    anchor_type: str,
    type_a: str,
    types_b: Sequence[str],
) -> set[tuple[NodeId, NodeId]]:
    """Anchor pairs sharing a ``type_a`` node AND a node of any type in
    ``types_b`` — the rule template of Sect. V-A's ground-truth classes.
    """
    pairs: set[tuple[NodeId, NodeId]] = set()
    for hub in graph.nodes_of_type(type_a):
        members = sorted(graph.neighbors_of_type(hub, anchor_type), key=repr)
        for i, x in enumerate(members):
            for y in members[i + 1 :]:
                if any(
                    graph.neighbors_of_type(x, t) & graph.neighbors_of_type(y, t)
                    for t in types_b
                ):
                    pairs.add((x, y))
    return pairs


def group_pairs(groups: Sequence[Sequence[NodeId]]) -> set[tuple[NodeId, NodeId]]:
    """All unordered within-group pairs — the planted class relation."""
    pairs: set[tuple[NodeId, NodeId]] = set()
    for group in groups:
        ordered = sorted(group, key=repr)
        for i, x in enumerate(ordered):
            for y in ordered[i + 1 :]:
                pairs.add((x, y))
    return pairs


def perturb_pairs(
    pairs: set[tuple[NodeId, NodeId]],
    universe: Sequence[NodeId],
    flip_probability: float,
    rng: random.Random,
) -> set[tuple[NodeId, NodeId]]:
    """Sect. V-A's "5% chance to assign a random class label".

    Each derived pair is dropped with ``flip_probability``; the same
    expected number of uniformly random pairs is added.  Pairs are
    visited in sorted order so the outcome depends only on the seed,
    not on set-iteration (hash) order.
    """
    ordered = sorted(pairs, key=repr)
    kept = {pair for pair in ordered if rng.random() >= flip_probability}
    num_random = sum(1 for _ in range(len(ordered)) if rng.random() < flip_probability)
    pool = sorted(universe, key=repr)
    added = 0
    attempts = 0
    while added < num_random and attempts < 50 * (num_random + 1):
        attempts += 1
        x, y = rng.sample(pool, 2)
        pair = (x, y) if repr(x) <= repr(y) else (y, x)
        if pair not in kept:
            kept.add(pair)
            added += 1
    return kept
