"""LinkedIn-like synthetic dataset (Table II, first row).

The paper's LinkedIn graph [7] has four node types — ``user``,
``employer``, ``location``, ``college`` — and two labelled semantic
classes: *college* (friends labelled "college") and *coworker*
(labelled "coworker"/"colleague"/"excolleague").

Real college friendships and coworker ties are not explained by one
shared attribute: college friends shared a campus (college AND
location) or met again at work (college AND employer); coworkers shared
an office (employer AND location) or a campus recruiting pipeline
(employer AND college).  The generator plants exactly that structure:

1. users get a primary **location** (city communities);
2. **college cohorts** and **employer teams** are assembled with a
   locality bias, so cohort-mates usually share a city too;
3. ground truth follows the conjunction/disjunction rules

   - college  = share college  AND (share location OR share employer)
   - coworker = share employer AND (share location OR share college)

   with the same 5% random-label chance the paper applies to its
   rule-generated Facebook classes.

A single metapath (share employer) is a noisy superset of *coworker*;
only conjunctive metagraphs — squares like user(employer,location)user —
pin the class down, and each class needs two of them.  That is the
regime in which the paper's MGP beats MPP/MGP-B/SRW.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datasets.base import LabeledGraphDataset, symmetric_labels
from repro.datasets.synthetic import (
    attach_group_attribute,
    attach_noise_attributes,
    correlated_groups,
    pairs_sharing,
    partition_into_groups,
    perturb_pairs,
)
from repro.graph.builder import GraphBuilder
from repro.graph.schema import GraphSchema

LINKEDIN_TYPES = ("user", "employer", "location", "college")

LINKEDIN_SCHEMA = GraphSchema(
    types=LINKEDIN_TYPES,
    edge_pairs=[
        ("user", "employer"),
        ("user", "location"),
        ("user", "college"),
    ],
)


@dataclass(frozen=True)
class LinkedInConfig:
    """Size and noise knobs for the LinkedIn-like generator."""

    num_users: int = 300
    city_size: tuple[int, int] = (15, 30)
    college_group_size: tuple[int, int] = (4, 8)
    work_group_size: tuple[int, int] = (4, 9)
    locality: float = 0.8
    attach_probability: float = 0.9
    noise_probability: float = 0.15
    label_flip_probability: float = 0.05
    seed: int = 7


#: Scale presets: tests use "tiny"; experiments default to "small".
LINKEDIN_SCALES = {
    "tiny": LinkedInConfig(num_users=60),
    "small": LinkedInConfig(num_users=300),
    "medium": LinkedInConfig(num_users=800),
}


def generate_linkedin(
    config: LinkedInConfig | None = None, scale: str | None = None
) -> LabeledGraphDataset:
    """Generate the LinkedIn-like dataset with rule-derived classes."""
    if config is None:
        config = LINKEDIN_SCALES[scale or "small"]
    rng = random.Random(config.seed)
    builder = GraphBuilder(name="linkedin", schema=LINKEDIN_SCHEMA)
    users = [f"u{i}" for i in range(config.num_users)]
    for user in users:
        builder.node(user, "user")

    # cities: every user's home community
    city_groups = partition_into_groups(users, *config.city_size, rng=rng)
    cities = attach_group_attribute(
        builder, city_groups, "location", "city", rng,
        attach_probability=config.attach_probability,
    )
    home_of = {
        user: f"city{idx}"
        for idx, group in enumerate(city_groups)
        for user in group
    }

    # college cohorts and employer teams, locality-biased
    college_groups = correlated_groups(
        users, home_of, *config.college_group_size, rng=rng,
        locality=config.locality,
    )
    colleges = attach_group_attribute(
        builder, college_groups, "college", "college", rng,
        attach_probability=config.attach_probability,
    )
    work_groups = correlated_groups(
        users, home_of, *config.work_group_size, rng=rng,
        locality=config.locality,
    )
    employers = attach_group_attribute(
        builder, work_groups, "employer", "employer", rng,
        attach_probability=config.attach_probability,
    )

    # noise: secondary attributes that dilute every signal
    attach_noise_attributes(builder, users, colleges, config.noise_probability, rng)
    attach_noise_attributes(builder, users, employers, config.noise_probability, rng)
    attach_noise_attributes(builder, users, cities, config.noise_probability, rng)

    graph = builder.build()

    college_pairs = pairs_sharing(
        graph, "user", "college", ("location", "employer")
    )
    coworker_pairs = pairs_sharing(
        graph, "user", "employer", ("location", "college")
    )
    college_pairs = perturb_pairs(
        college_pairs, users, config.label_flip_probability, rng
    )
    coworker_pairs = perturb_pairs(
        coworker_pairs, users, config.label_flip_probability, rng
    )
    labels = {
        "college": symmetric_labels(college_pairs),
        "coworker": symmetric_labels(coworker_pairs),
    }
    return LabeledGraphDataset(
        name="linkedin", graph=graph, anchor_type="user", labels=labels
    )
