"""The paper's Fig. 1 toy social network and Fig. 2 metagraphs.

Useful for documentation, examples and tests: every instance count can
be verified by hand against the figure.
"""

from __future__ import annotations

from repro.datasets.base import LabeledGraphDataset, symmetric_labels
from repro.graph.typed_graph import TypedGraph
from repro.metagraph.metagraph import Metagraph, metapath


def toy_graph() -> TypedGraph:
    """The Fig. 1 toy graph: five users and their attribute nodes."""
    g = TypedGraph(name="toy")
    for user in ("Alice", "Bob", "Kate", "Jay", "Tom"):
        g.add_node(user, "user")
    attributes = [
        ("Clinton", "surname"),
        ("123 Green St", "address"),
        ("456 White St", "address"),
        ("College A", "school"),
        ("College B", "school"),
        ("Economics", "major"),
        ("Physics", "major"),
        ("Company X", "employer"),
        ("Music", "hobby"),
    ]
    for value, node_type in attributes:
        g.add_node(value, node_type)
    edges = [
        ("Alice", "Clinton"), ("Bob", "Clinton"),
        ("Alice", "123 Green St"), ("Bob", "123 Green St"),
        ("Kate", "Company X"), ("Alice", "Company X"),
        ("Kate", "Music"), ("Alice", "Music"),
        ("Kate", "456 White St"), ("Jay", "456 White St"),
        ("Kate", "College B"), ("Jay", "College B"),
        ("Kate", "Economics"), ("Jay", "Economics"),
        ("Bob", "College A"), ("Tom", "College A"),
        ("Bob", "Physics"), ("Tom", "Physics"),
    ]
    for u, v in edges:
        g.add_edge(u, v)
    return g


def toy_metagraphs() -> dict[str, Metagraph]:
    """Fig. 2's M1 (classmate), M2/M3 (close friend), M4 (family)."""
    return {
        "M1": Metagraph(
            ["user", "school", "major", "user"],
            [(0, 1), (0, 2), (3, 1), (3, 2)],
            name="M1",
        ),
        "M2": Metagraph(
            ["user", "employer", "hobby", "user"],
            [(0, 1), (0, 2), (3, 1), (3, 2)],
            name="M2",
        ),
        "M3": metapath("user", "address", "user", name="M3"),
        "M4": Metagraph(
            ["user", "surname", "address", "user"],
            [(0, 1), (0, 2), (3, 1), (3, 2)],
            name="M4",
        ),
    }


def toy_dataset() -> LabeledGraphDataset:
    """Fig. 1's graph with the classes of Fig. 1(b) as ground truth."""
    labels = {
        "classmates": symmetric_labels([("Kate", "Jay"), ("Bob", "Tom")]),
        "close friends": symmetric_labels([("Kate", "Alice"), ("Kate", "Jay")]),
        "family": symmetric_labels([("Bob", "Alice")]),
    }
    return LabeledGraphDataset(
        name="toy", graph=toy_graph(), anchor_type="user", labels=labels
    )
