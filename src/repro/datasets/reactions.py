"""Reaction-network dataset: the first non-social, kinded-schema graph.

A synthetic metabolic-style network with two node types and three
*directed, labeled* edge kinds:

- ``mol --in--> rxn``   the reaction consumes the molecule,
- ``rxn --out--> mol``  the reaction produces the molecule,
- ``mol --cat--> rxn``  the molecule catalyses the reaction (and is
  neither consumed nor produced by it).

The anchor type is ``mol``; semantic classes are derived from the
realised graph the same way the social generators derive theirs:

- **co-substrate**: two molecules consumed by the same reaction,
- **co-product**: two molecules produced by the same reaction.

Both classes are witnessed by symmetric metagraphs the miner can find
(``mol --in--> rxn <--in-- mol`` and ``mol <--out-- rxn --out--> mol``),
so the full offline pipeline — mining, matching, learning — runs
end to end on a schema where edge *roles*, not just node types, carry
the semantics.  Every reaction has at least two substrates, which keeps
those patterns past the paper's symmetric-anchor-pair filter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datasets.base import LabeledGraphDataset, symmetric_labels
from repro.graph.builder import GraphBuilder
from repro.graph.schema import GraphSchema
from repro.graph.typed_graph import EdgeKind, NodeId

#: mol -> rxn: the reaction consumes the molecule.
CONSUMES = EdgeKind("in", True)
#: rxn -> mol: the reaction produces the molecule.
PRODUCES = EdgeKind("out", True)
#: mol -> rxn: the molecule catalyses the reaction.
CATALYZES = EdgeKind("cat", True)

REACTIONS_SCHEMA = GraphSchema(
    types=("mol", "rxn"),
    edge_rules=[
        ("mol", "rxn", CONSUMES),
        ("rxn", "mol", PRODUCES),
        ("mol", "rxn", CATALYZES),
    ],
)


@dataclass(frozen=True)
class ReactionsConfig:
    """Size knobs for the reaction-network generator."""

    num_molecules: int = 60
    num_reactions: int = 45
    substrates_per_reaction: tuple[int, int] = (2, 3)
    products_per_reaction: tuple[int, int] = (1, 2)
    #: how many molecules double as catalysts (drawn from a small pool,
    #: so the same enzyme recurs across reactions)
    num_catalysts: int = 6
    catalyst_probability: float = 0.6
    seed: int = 7


#: Scale presets: tests use "tiny"; experiments default to "small".
REACTIONS_SCALES = {
    "tiny": ReactionsConfig(num_molecules=24, num_reactions=16),
    "small": ReactionsConfig(),
    "medium": ReactionsConfig(num_molecules=150, num_reactions=120),
}


def generate_reactions(
    config: ReactionsConfig | None = None, scale: str | None = None
) -> LabeledGraphDataset:
    """Generate the reaction-network dataset with derived labels."""
    if config is None:
        config = REACTIONS_SCALES[scale or "small"]
    rng = random.Random(config.seed)
    builder = GraphBuilder(name="reactions", schema=REACTIONS_SCHEMA)
    molecules = [f"m{i}" for i in range(config.num_molecules)]
    for mol in molecules:
        builder.node(mol, "mol")
    catalysts = molecules[: config.num_catalysts]

    co_substrate: list[tuple[NodeId, NodeId]] = []
    co_product: list[tuple[NodeId, NodeId]] = []
    for i in range(config.num_reactions):
        rxn = f"r{i}"
        builder.node(rxn, "rxn")
        # substrates, products, and the catalyst of one reaction are
        # disjoint: a (mol, rxn) pair carries exactly one edge kind
        num_subs = rng.randint(*config.substrates_per_reaction)
        num_prods = rng.randint(*config.products_per_reaction)
        participants = rng.sample(molecules, num_subs + num_prods)
        substrates = participants[:num_subs]
        products = participants[num_subs:]
        for mol in substrates:
            builder.edge(mol, rxn, CONSUMES)
        for mol in products:
            builder.edge(rxn, mol, PRODUCES)
        if rng.random() < config.catalyst_probability:
            free = [c for c in catalysts if c not in participants]
            if free:
                builder.edge(rng.choice(free), rxn, CATALYZES)
        co_substrate.extend(
            (a, b) for j, a in enumerate(substrates) for b in substrates[j + 1:]
        )
        co_product.extend(
            (a, b) for j, a in enumerate(products) for b in products[j + 1:]
        )

    labels = {
        "co-substrate": symmetric_labels(co_substrate),
        "co-product": symmetric_labels(co_product),
    }
    return LabeledGraphDataset(
        name="reactions",
        graph=builder.build(),
        anchor_type="mol",
        labels=labels,
    )
