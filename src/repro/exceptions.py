"""Exception hierarchy for the repro library.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing finer-grained categories when needed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Base class for errors related to typed object graphs."""


class NodeNotFoundError(GraphError, KeyError):
    """A node id was referenced that does not exist in the graph."""

    def __init__(self, node):
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class DuplicateNodeError(GraphError, ValueError):
    """A node id was added twice, possibly with conflicting types."""

    def __init__(self, node, existing_type, new_type):
        super().__init__(
            f"node {node!r} already exists with type {existing_type!r}; "
            f"cannot re-add with type {new_type!r}"
        )
        self.node = node
        self.existing_type = existing_type
        self.new_type = new_type


class EdgeError(GraphError, ValueError):
    """An edge is structurally invalid (self-loop, unknown endpoint, ...)."""


class SchemaError(GraphError, ValueError):
    """A node or edge violates the graph schema."""


class MetagraphError(ReproError):
    """Base class for errors related to metagraph construction/handling."""


class InvalidMetagraphError(MetagraphError, ValueError):
    """The metagraph is malformed (disconnected, self-loops, empty, ...)."""


class MatchingError(ReproError):
    """Base class for errors raised by subgraph matching engines."""


class LearningError(ReproError):
    """Base class for errors raised by the learning subsystem."""


class QueryError(ReproError, ValueError):
    """An online query references a node the index cannot rank.

    Raised instead of silently returning an all-zero ranking when the
    query (or pair member) is absent from the graph, or exists but is
    not of the engine's anchor type — both cases where Sect. IV's
    online phase is undefined and any answer would be confidently
    wrong.
    """


class ServingError(ReproError, RuntimeError):
    """The serving tier could not complete a request.

    Raised by the process-worker backend when a shard's replicas are
    all unreachable within the request deadline, when a worker speaks
    an unexpected protocol frame, or when the supervisor cannot start
    a worker.  Distinct from :class:`QueryError`: the *query* is fine,
    the *fleet* is not — retrying against a healthy fleet succeeds.
    """


class TrainingDataError(LearningError, ValueError):
    """Training examples are empty, malformed, or inconsistent."""


class ConvergenceError(LearningError, RuntimeError):
    """Gradient ascent failed to make progress within the iteration budget."""


class IndexError_(ReproError):
    """Base class for errors raised by the instance-index subsystem.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class CatalogMismatchError(IndexError_, ValueError):
    """Vectors/weights refer to a different metagraph catalog than provided."""


class SnapshotError(IndexError_, ValueError):
    """A persisted index snapshot is missing, corrupt, or incompatible."""


class StaleIndexError(IndexError_, RuntimeError):
    """The graph mutated after the index was built, without a delta update.

    Raised by serving paths instead of silently answering from counts
    that no longer describe the graph; resolve by calling
    ``apply_updates()`` with the edits, or ``prepare()`` to rebuild.
    """


class DeltaError(IndexError_, ValueError):
    """An incremental index update is invalid or failed an invariant."""


class RewriteError(DeltaError):
    """A rewrite rule is malformed or cannot compile against a binding."""


class StaleSnapshotError(SnapshotError):
    """A snapshot's fingerprints do not match the current graph/catalog."""


class DatasetError(ReproError):
    """Base class for errors raised by dataset generators/loaders."""


class ExperimentError(ReproError):
    """Base class for errors raised by the experiment harness."""
